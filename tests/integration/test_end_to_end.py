"""End-to-end integration tests across the whole stack.

These tests drive realistic (but small) versions of the paper's scenarios
through the public API: the §6.1 simulation shapes and the §6.2 engine
behaviour, checking the qualitative claims of the evaluation section rather
than individual modules.
"""

import statistics

import numpy as np
import pytest

from repro.core.models import AdaptivePageModel, GaussianDice
from repro.core.replication import ReplicatedColumn
from repro.core.segmentation import SegmentedColumn
from repro.engine.database import Database
from repro.simulation.runner import run_grid
from repro.util.units import KB
from repro.workloads.generators import make_column, uniform_workload, zipf_workload
from repro.workloads.skyserver import skyserver_dataset, skyserver_workload

DOMAIN = (0.0, 1_000_000.0)


@pytest.fixture(scope="module")
def grid_results():
    """A reduced-scale §6.1 grid shared by the shape tests below."""
    values = make_column(40_000, 1_000_000, seed=42)
    workload = uniform_workload(1_200, DOMAIN, 0.1, seed=42)
    return run_grid(workload, values=values, seed=42)


class TestSimulationShapes:
    def test_replication_writes_less_than_segmentation(self, grid_results):
        """Paper §6.1.1: replication lazily materializes, so it writes less."""
        for model in ("GD", "APM"):
            writes_segmentation = grid_results[f"{model} Segm"].summary().total_writes_bytes
            writes_replication = grid_results[f"{model} Repl"].summary().total_writes_bytes
            assert writes_replication < writes_segmentation

    def test_reads_drop_after_adaptation(self, grid_results):
        """Paper §6.1.2: reads converge towards the selection size."""
        for label, result in grid_results.items():
            reads = result.reads_series()
            early = float(np.mean(reads[:20]))
            late = float(np.mean(reads[-200:]))
            assert late < 0.5 * early, label

    def test_replication_reads_slightly_above_segmentation(self, grid_results):
        """Paper Table 1 (selectivity 0.1): replication reads a bit more."""
        assert (
            grid_results["APM Repl"].average_read_kb()
            >= grid_results["APM Segm"].average_read_kb() * 0.9
        )

    def test_replica_storage_peaks_then_shrinks(self, grid_results):
        """Paper §6.1.3: the replica tree needs extra storage, then collapses."""
        for label in ("GD Repl", "APM Repl"):
            storage = grid_results[label].storage_series()
            column_bytes = grid_results[label].column_bytes
            assert max(storage) > 1.1 * column_bytes
            assert storage[-1] < 1.3 * column_bytes

    def test_zipf_keeps_reorganizing_longer_than_uniform(self):
        """Paper §6.1.1: skew delays saturation of the reorganization."""
        values = make_column(40_000, 1_000_000, seed=7)
        uniform = run_grid(uniform_workload(1_200, DOMAIN, 0.1, seed=7), values=values, seed=7)
        zipf = run_grid(zipf_workload(1_200, DOMAIN, 0.1, seed=7), values=values, seed=7)

        def last_write_query(result) -> int:
            writes = result.log.series("writes_bytes")
            nonzero = [i for i, w in enumerate(writes) if w > 0]
            return nonzero[-1] if nonzero else 0

        assert last_write_query(zipf["APM Segm"]) >= last_write_query(uniform["APM Segm"])


class TestEngineScenario:
    def test_skyserver_style_run_improves_selection_time(self):
        """Paper §6.2: after adaptation, per-query selection beats a full scan."""
        dataset = skyserver_dataset(300_000, seed=11)
        workload = skyserver_workload("random", 60, seed=11)

        def run(adaptive: bool) -> tuple[list, Database]:
            database = Database()
            database.create_table("p", {"objid": "int64", "ra": "float64"})
            database.bulk_load(
                "p",
                {"objid": np.arange(dataset.ra.size, dtype=np.int64), "ra": dataset.ra},
            )
            if adaptive:
                database.enable_adaptive_segmentation(
                    "p", "ra", model="apm", m_min=dataset.m_min, m_max=dataset.m_max_large
                )
            times = []
            for query in workload:
                result = database.execute(
                    f"SELECT objid FROM p WHERE ra BETWEEN {float(query.low)!r} "
                    f"AND {float(query.high)!r}"
                )
                times.append(result)
            return times, database

        baseline_results, _ = run(adaptive=False)
        adaptive_results, database = run(adaptive=True)
        # Identical answers on every query.
        for base, adapted in zip(baseline_results, adaptive_results):
            assert sorted(base.column("objid")) == sorted(adapted.column("objid"))
        # The adaptive column actually reorganized.
        handle = database.adaptive_handle("p", "ra")
        assert handle.adaptive.segment_count > 1
        # Steady-state selection work is below the full-scan baseline.  Both
        # sides exclude plan compilation (the paper's Figure 10 splits server
        # execution into selection vs adaptation only; the segment-aware plans
        # are a little costlier to compile, which is noise here).  Medians,
        # not sums: a single GC pause or scheduler blip on a loaded machine
        # must not decide a wall-clock comparison.
        tail = len(baseline_results) // 2
        baseline_tail = statistics.median(
            r.total_seconds - r.optimizer_seconds for r in baseline_results[tail:]
        )
        adaptive_tail_selection = statistics.median(
            r.total_seconds - r.adaptation_seconds - r.optimizer_seconds
            for r in adaptive_results[tail:]
        )
        assert adaptive_tail_selection < baseline_tail

    def test_core_strategies_agree_with_each_other(self):
        """Segmentation, replication and the baseline all answer identically."""
        values = make_column(30_000, 1_000_000, seed=13)
        workload = uniform_workload(300, DOMAIN, 0.05, seed=13)
        segmentation = SegmentedColumn(
            values.copy(), model=AdaptivePageModel(2 * KB, 8 * KB), domain=DOMAIN
        )
        replication = ReplicatedColumn(
            values.copy(), model=GaussianDice(seed=13), domain=DOMAIN
        )
        for query in workload:
            counts = {
                "segmentation": segmentation.select(query.low, query.high).count,
                "replication": replication.select(query.low, query.high).count,
                "brute": int(((values >= query.low) & (values < query.high)).sum()),
            }
            assert len(set(counts.values())) == 1, counts
        segmentation.check_invariants()
        replication.check_invariants()
