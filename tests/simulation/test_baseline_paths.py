"""Regression test for the unified baseline path (registry refactor).

Before the strategy registry, ``simulation/simulator.py`` and
``simulation/runner.py`` each special-cased the "unsegmented" strategy
(separate model handling and label patching).  Both now resolve through the
registry; this test proves the direct-simulator path and the grid-runner path
produce *identical* per-query :class:`QueryStats` for the baseline.
"""

import numpy as np

from repro.simulation.runner import run_grid, run_single
from repro.simulation.simulator import SimulationConfig, Simulator
from repro.workloads.generators import make_column, uniform_workload

DOMAIN = (0.0, 1_000_000.0)


def _stats_records(result):
    return [
        (
            record.index,
            record.low,
            record.high,
            record.reads_bytes,
            record.writes_bytes,
            record.result_count,
            record.segment_count,
            record.storage_bytes,
            record.segments_scanned,
            record.splits_performed,
        )
        for record in result.log
    ]


class TestBaselinePathsAgree:
    def test_simulator_and_runner_produce_identical_baseline_stats(self):
        values = make_column(10_000, 1_000_000, seed=42)
        workload = uniform_workload(80, DOMAIN, 0.1, seed=42)

        direct = Simulator(
            SimulationConfig(strategy="unsegmented"), values=values.copy()
        ).run(workload)
        via_runner = run_single(
            workload, strategy="unsegmented", model_name="-", values=values.copy()
        )

        assert direct.label == via_runner.label == "NoSegm"
        assert direct.model == via_runner.model == "-"
        assert _stats_records(direct) == _stats_records(via_runner)

    def test_grid_baseline_matches_the_direct_path(self):
        values = make_column(10_000, 1_000_000, seed=43)
        workload = uniform_workload(60, DOMAIN, 0.1, seed=43)

        direct = Simulator(
            SimulationConfig(strategy="unsegmented"), values=values.copy()
        ).run(workload)
        grid = run_grid(workload, values=values, include_baseline=True, seed=43)

        assert "NoSegm" in grid
        assert _stats_records(grid["NoSegm"]) == _stats_records(direct)
        # The baseline never reorganizes, whichever path built it.
        assert all(record.writes_bytes == 0 for record in grid["NoSegm"].log)
