"""``run_grid(workers=N)`` must be byte-identical to the serial path."""

from __future__ import annotations

import dataclasses

import pytest

from repro.simulation.runner import STRATEGY_MODEL_GRID, run_grid
from repro.workloads.generators import make_column, uniform_workload

DOMAIN = (0.0, 100_000.0)
COLUMN_SIZE = 8_000
N_QUERIES = 80


def _run(workers=None, backend="process"):
    workload = uniform_workload(N_QUERIES, DOMAIN, 0.05, seed=11)
    values = make_column(COLUMN_SIZE, int(DOMAIN[1]), seed=3)
    return run_grid(
        workload,
        values=values,
        column_size=COLUMN_SIZE,
        domain_size=int(DOMAIN[1]),
        include_baseline=True,
        seed=5,
        workers=workers,
        backend=backend,
    )


def _assert_identical(serial, parallel):
    assert list(serial) == list(parallel)  # same labels, same order
    for label in serial:
        left, right = serial[label], parallel[label]
        assert left.strategy == right.strategy
        assert left.model == right.model
        assert left.workload == right.workload
        assert left.column_bytes == right.column_bytes
        assert left.metadata == right.metadata
        assert len(left.log) == len(right.log)
        for mine, theirs in zip(left.log, right.log):
            # QueryStats is a dataclass: field-wise equality covers every
            # counter (reads/writes bytes, counts, splits, drops, ...).
            assert dataclasses.asdict(mine) == dataclasses.asdict(theirs), (
                f"{label}: per-query stats diverge between serial and parallel runs"
            )


def test_parallel_grid_is_byte_identical_to_serial():
    serial = _run(workers=None)
    parallel = _run(workers=4)
    _assert_identical(serial, parallel)


def test_workers_one_takes_the_serial_path():
    serial = _run(workers=None)
    one = _run(workers=1)
    _assert_identical(serial, one)


def test_thread_backend_is_byte_identical_to_serial():
    serial = _run(workers=None)
    threaded = _run(workers=4, backend="thread")
    _assert_identical(serial, threaded)


def test_thread_backend_is_byte_identical_to_process_backend():
    process = _run(workers=2, backend="process")
    threaded = _run(workers=2, backend="thread")
    _assert_identical(process, threaded)


def test_unknown_backend_is_rejected():
    with pytest.raises(ValueError, match="backend"):
        _run(workers=2, backend="fiber")


def test_grid_covers_all_paper_combinations():
    results = _run(workers=2)
    assert len(results) == len(STRATEGY_MODEL_GRID) + 1  # + NoSegm baseline
