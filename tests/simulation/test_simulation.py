"""Unit tests for the simulator, metrics containers and the grid runner."""

import numpy as np
import pytest

from repro.simulation.metrics import ExperimentResult, MetricsSummary
from repro.simulation.runner import STRATEGY_MODEL_GRID, run_grid, run_single
from repro.simulation.simulator import (
    BufferedIOAccountant,
    SimulationConfig,
    Simulator,
    build_strategy,
)
from repro.storage.buffer import BufferPool
from repro.util.units import KB
from repro.workloads.generators import make_column, uniform_workload, zipf_workload

DOMAIN = (0.0, 1_000_000.0)


@pytest.fixture(scope="module")
def workload():
    return uniform_workload(300, DOMAIN, 0.1, seed=21)


class TestBuildStrategy:
    def test_known_strategies(self):
        values = make_column(5_000, 100_000, seed=1)
        from repro.core.models import AdaptivePageModel

        model = AdaptivePageModel(1 * KB, 4 * KB)
        for name in ("segmentation", "replication", "unsegmented"):
            column = build_strategy(name, values, model if name != "unsegmented" else None)
            assert column.select(0, 50_000).count > 0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            build_strategy("btree", make_column(100), None)

    def test_adaptive_strategy_requires_model(self):
        with pytest.raises(ValueError):
            build_strategy("segmentation", make_column(100), None)

    def test_options_unknown_to_a_strategy_are_dropped(self):
        """One option set serves every strategy (legacy simulator contract)."""
        from repro.core.models import AdaptivePageModel

        model = AdaptivePageModel(1 * KB, 4 * KB)
        column = build_strategy(
            "segmentation", make_column(5_000, 100_000, seed=1), model,
            storage_budget=1e6,  # only replication takes this; must not raise
        )
        assert column.select(0, 50_000).count > 0


class TestSimulationConfig:
    def test_display_labels_match_paper(self):
        assert SimulationConfig(strategy="segmentation", model_name="apm").display_label() == "APM Segm"
        assert SimulationConfig(strategy="replication", model_name="gd").display_label() == "GD Repl"
        assert SimulationConfig(strategy="unsegmented").display_label() == "NoSegm"
        assert SimulationConfig(label="Custom").display_label() == "Custom"

    def test_make_model(self):
        assert SimulationConfig(strategy="unsegmented").make_model() is None
        assert SimulationConfig(strategy="segmentation", model_name="gd").make_model() is not None


class TestSimulator:
    def test_run_produces_per_query_log(self, workload):
        config = SimulationConfig(strategy="segmentation", model_name="apm", column_size=20_000)
        result = Simulator(config).run(workload)
        assert isinstance(result, ExperimentResult)
        assert len(result.log) == len(workload)
        assert result.label == "APM Segm"
        assert result.metadata["column_size"] == 20_000

    def test_buffer_constrained_run_records_disk_traffic(self, workload):
        config = SimulationConfig(
            strategy="unsegmented",
            column_size=20_000,
            buffer_capacity_bytes=10 * KB,  # much smaller than the 80 KB column
        )
        simulator = Simulator(config)
        result = simulator.run(workload.head(50))
        summary = result.summary()
        assert summary.disk_reads_bytes > 0
        assert result.buffer_stats is not None
        assert result.buffer_stats.page_faults > 0

    def test_segmented_column_causes_less_disk_traffic_than_baseline(self, workload):
        """With a buffer smaller than the column, segmentation pays off.

        The non-segmented column (80 KB) never fits the 30 KB buffer, so every
        query streams it from the secondary store; the adapted segments do fit
        and mostly hit the buffer — the behaviour §2 of the paper motivates.
        """
        capacity = 30 * KB
        baseline = Simulator(
            SimulationConfig(strategy="unsegmented", column_size=20_000, buffer_capacity_bytes=capacity)
        ).run(workload.head(150))
        segmented = Simulator(
            SimulationConfig(
                strategy="segmentation",
                model_name="apm",
                column_size=20_000,
                m_min=1 * KB,
                m_max=4 * KB,
                buffer_capacity_bytes=capacity,
            )
        ).run(workload.head(150))
        assert (
            segmented.buffer_stats.disk_reads_bytes < baseline.buffer_stats.disk_reads_bytes
        )
        assert segmented.buffer_stats.hit_ratio > baseline.buffer_stats.hit_ratio


class TestBufferedAccountant:
    def test_reads_fault_pages_and_writes_dirty_them(self):
        pool = BufferPool(8 * KB)
        accountant = BufferedIOAccountant(pool)
        segment = object()
        accountant.record_read(4 * KB, segment)
        assert pool.stats.page_faults == 1
        accountant.record_write(4 * KB, segment)
        assert pool.stats.page_hits == 1
        assert accountant.total_reads_bytes == 4 * KB

    def test_segmentless_records_skip_the_pool(self):
        pool = BufferPool(8 * KB)
        accountant = BufferedIOAccountant(pool)
        accountant.record_read(4 * KB)
        assert pool.stats.page_faults == 0


class TestRunners:
    def test_run_single_respects_strategy(self, workload):
        result = run_single(workload.head(100), strategy="replication", model_name="apm",
                            column_size=20_000, seed=3)
        assert result.strategy == "replication"
        assert result.summary().queries == 100

    def test_run_grid_produces_paper_labels(self):
        workload = uniform_workload(150, DOMAIN, 0.1, seed=2)
        results = run_grid(workload, column_size=20_000, seed=2)
        assert set(results) == {"GD Segm", "GD Repl", "APM Segm", "APM Repl"}
        assert len(STRATEGY_MODEL_GRID) == 4

    def test_run_grid_with_baseline(self):
        workload = uniform_workload(50, DOMAIN, 0.1, seed=2)
        results = run_grid(workload, column_size=10_000, include_baseline=True, seed=2)
        assert "NoSegm" in results
        summary = results["NoSegm"].summary()
        assert summary.total_writes_bytes == 0

    def test_grid_runs_share_the_same_column(self):
        """All strategies must see identical data so results are comparable."""
        workload = uniform_workload(50, DOMAIN, 0.1, seed=4)
        results = run_grid(workload, column_size=10_000, seed=4)
        counts = {label: result.log[0].result_count for label, result in results.items()}
        assert len(set(counts.values())) == 1


class TestMetrics:
    def test_series_and_summary(self):
        workload = zipf_workload(120, DOMAIN, 0.1, seed=6)
        result = run_single(workload, strategy="replication", model_name="apm",
                            column_size=20_000, seed=6)
        assert len(result.cumulative_writes()) == 120
        assert len(result.reads_series()) == 120
        assert len(result.storage_series()) == 120
        assert len(result.moving_average_time_series(10)) == 120
        cumulative = result.cumulative_time_series()
        assert all(b >= a for a, b in zip(cumulative, cumulative[1:]))
        summary = result.summary()
        assert isinstance(summary, MetricsSummary)
        assert summary.average_read_kb == pytest.approx(summary.average_read_bytes / 1024)
        assert summary.peak_storage_bytes >= summary.final_storage_bytes

    def test_cumulative_writes_are_monotone(self):
        workload = uniform_workload(80, DOMAIN, 0.1, seed=8)
        result = run_single(workload, strategy="segmentation", model_name="gd",
                            column_size=10_000, seed=8)
        writes = result.cumulative_writes()
        assert all(b >= a for a, b in zip(writes, writes[1:]))
