"""Byte-accounting regression pin for the Figure 5-7 simulation grid.

The sorted zero-copy segment layer must not change what the paper's figures
measure: per-query read/write *logical* bytes, result counts and segment
counts.  ``tests/data/fig5_7_accounting_fixture.json`` was captured from the
pre-zero-copy implementation (PR 1 tree) on a reduced grid; this test re-runs
the identical grid and requires every per-combination total **and** the
SHA-256 of the full per-query series to match bit for bit.

If a future change legitimately alters the accounting (it shouldn't — the
accountants count ``count * value_width``), regenerate the fixture in the
same commit and call the change out in CHANGES.md.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.simulation.runner import run_grid
from repro.workloads.generators import make_column, uniform_workload, zipf_workload

FIXTURE_PATH = Path(__file__).resolve().parent.parent / "data" / "fig5_7_accounting_fixture.json"


@pytest.fixture(scope="module")
def fixture() -> dict:
    return json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))


def _series_digest(log) -> str:
    digest = hashlib.sha256()
    digest.update(np.asarray(log.series("reads_bytes"), dtype=np.float64).tobytes())
    digest.update(np.asarray(log.series("writes_bytes"), dtype=np.float64).tobytes())
    digest.update(np.asarray(log.series("result_count"), dtype=np.float64).tobytes())
    return digest.hexdigest()


@pytest.mark.parametrize("workload_key", ["uniform_s0.1", "zipf_s0.01"])
def test_grid_accounting_matches_pre_zero_copy_fixture(fixture, workload_key):
    domain = tuple(fixture["domain"])
    n_queries = fixture["n_queries"]
    selectivity = 0.1 if workload_key == "uniform_s0.1" else 0.01
    if workload_key == "uniform_s0.1":
        workload = uniform_workload(n_queries, domain, selectivity,
                                    seed=fixture["workload_seed"])
    else:
        workload = zipf_workload(n_queries, domain, selectivity,
                                 seed=fixture["workload_seed"])
    values = make_column(fixture["column_size"], int(domain[1]), seed=fixture["column_seed"])
    results = run_grid(
        workload,
        values=values,
        column_size=fixture["column_size"],
        domain_size=int(domain[1]),
        m_min=fixture["m_min"],
        m_max=fixture["m_max"],
        include_baseline=True,
        seed=fixture["grid_seed"],
    )
    expected = fixture["grid"][workload_key]
    assert set(results) == set(expected)
    for label, result in results.items():
        pinned = expected[label]
        reads = sum(result.log.series("reads_bytes"))
        writes = sum(result.log.series("writes_bytes"))
        counts = sum(result.log.series("result_count"))
        assert reads == pinned["total_reads_bytes"], f"{label}: reads drifted"
        assert writes == pinned["total_writes_bytes"], f"{label}: writes drifted"
        assert counts == pinned["total_result_count"], f"{label}: result counts drifted"
        assert result.log.records[-1].segment_count == pinned["final_segment_count"]
        assert _series_digest(result.log) == pinned["series_sha256"], (
            f"{label}: per-query accounting series drifted from the "
            "pre-zero-copy implementation"
        )
