"""Unit tests for the benchmark harness, reporting and experiment functions.

The experiment functions are exercised at a drastically reduced scale through
the environment knobs so the test suite stays fast; the full-scale runs live
in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.bench import harness
from repro.bench.reporting import downsample, format_series, format_table


@pytest.fixture(autouse=True)
def small_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_QUERIES", "200")
    monkeypatch.setenv("REPRO_ENGINE_ROWS", "120000")
    monkeypatch.setenv("REPRO_ENGINE_QUERIES", "24")
    # The harness memoises per-process; clear so the small scale takes effect.
    harness._SIM_CACHE.clear()
    harness._ENGINE_CACHE.clear()
    harness._DATASET_CACHE.clear()
    yield
    harness._SIM_CACHE.clear()
    harness._ENGINE_CACHE.clear()
    harness._DATASET_CACHE.clear()


class TestReporting:
    def test_downsample_short_series(self):
        assert downsample([1.0, 2.0], 10) == [(1, 1.0), (2, 2.0)]

    def test_downsample_long_series_keeps_endpoints(self):
        series = list(range(1000))
        sampled = downsample(series, 10)
        assert sampled[0][0] == 1
        assert sampled[-1][0] == 1000
        assert len(sampled) <= 11

    def test_downsample_empty(self):
        assert downsample([], 5) == []

    def test_format_series(self):
        text = format_series("demo", {"A": [1, 2, 3], "B": [10, 20, 30]}, unit="bytes")
        assert "demo" in text and "A" in text and "B" in text and "bytes" in text

    def test_format_series_no_data(self):
        assert "(no data)" in format_series("empty", {})

    def test_format_table(self):
        text = format_table("t", [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}])
        assert "t" in text and "a" in text
        assert "2.5" in text

    def test_format_table_no_rows(self):
        assert "(no rows)" in format_table("t", [])


class TestHarness:
    def test_env_scaling(self):
        assert harness.sim_query_count() == 200
        assert harness.engine_query_count() == 24

    def test_simulation_grid_is_memoised(self):
        first = harness.simulation_grid("uniform", 0.1)
        second = harness.simulation_grid("uniform", 0.1)
        assert first is second
        assert set(first) == {"GD Segm", "GD Repl", "APM Segm", "APM Repl"}

    def test_skyserver_schemes_scale_bounds(self):
        schemes = harness.skyserver_schemes(1024**3)
        assert schemes["APM 1-25"]["m_max"] == pytest.approx(25 * 1024**2)
        assert schemes["NoSegm"]["strategy"] is None
        assert tuple(harness.SCHEME_ORDER) == ("NoSegm", "GD", "APM 1-25", "APM 1-5")

    def test_engine_run_produces_timings_and_stats(self):
        run = harness.skyserver_engine_run("random", "APM 1-25")
        assert len(run.selection_seconds) == 24
        assert len(run.cumulative_ms()) == 24
        averages = run.average_ms()
        assert set(averages) == {"selection_ms", "adaptation_ms", "total_ms"}
        assert run.segment_stats is not None

    def test_engine_baseline_has_no_adaptation(self):
        run = harness.skyserver_engine_run("random", "NoSegm")
        assert sum(run.adaptation_seconds) == 0.0
        assert run.segment_stats is None

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            harness.skyserver_engine_run("random", "BTree")


class TestExperimentFunctions:
    def test_figure_2_table(self):
        from repro.bench.experiments import figure_2

        text = figure_2()
        assert "sigma=0.05" in text and "Figure 2" in text

    def test_simulation_figures_render(self):
        from repro.bench.experiments import figure_5, figure_7, table_1

        assert "selectivity 0.1" in figure_5()
        assert "first 1000 queries" in figure_7()
        table = table_1()
        assert "GD Segm" in table and "APM Repl" in table

    def test_engine_figures_render(self):
        from repro.bench.experiments import figure_10, table_2

        text = figure_10()
        assert "random workload" in text and "NoSegm" in text
        assert "Scheme" in table_2()

    def test_cli_lists_and_runs(self, capsys):
        from repro.bench.experiments import main

        assert main(["--list"]) == 0
        captured = capsys.readouterr()
        assert "fig5" in captured.out
        assert main(["fig2"]) == 0
        assert "Figure 2" in capsys.readouterr().out
        assert main(["unknown-experiment"]) == 2
