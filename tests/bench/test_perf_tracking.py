"""Unit tests for the standing perf-tracking harness."""

import json

import pytest

from repro.bench.perf_tracking import (
    PerfSuite,
    compare_to_baseline,
    env_scale,
    load_report,
    time_per_op,
)


class TestEnvScale:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("PERF_TEST_KNOB", raising=False)
        assert env_scale("PERF_TEST_KNOB", 42) == 42

    def test_reads_environment(self, monkeypatch):
        monkeypatch.setenv("PERF_TEST_KNOB", "7")
        assert env_scale("PERF_TEST_KNOB", 42) == 7

    def test_rejects_non_positive(self, monkeypatch):
        monkeypatch.setenv("PERF_TEST_KNOB", "0")
        with pytest.raises(ValueError):
            env_scale("PERF_TEST_KNOB", 42)


class TestTiming:
    def test_time_per_op_returns_best_and_median(self):
        timing = time_per_op(lambda: None, number=10, repeat=3)
        assert 0.0 <= timing["best_s"] <= timing["median_s"]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            time_per_op(lambda: None, number=0)


class TestPerfSuite:
    def test_measure_derive_and_lookup(self):
        suite = PerfSuite("unit")
        suite.measure("noop", lambda: None, number=5, repeat=2, rows=10)
        suite.derive("speedup", 3.5)
        assert suite["noop"].metadata == {"rows": 10}
        assert suite["speedup"].value == 3.5
        with pytest.raises(KeyError):
            suite["missing"]

    def test_write_and_load_roundtrip(self, tmp_path):
        suite = PerfSuite("unit")
        suite.measure("noop", lambda: None, number=5, repeat=2)
        path = suite.write(tmp_path / "BENCH_unit.json")
        report = load_report(path)
        assert report["suite"] == "unit"
        assert report["results"][0]["name"] == "noop"
        assert "python" in report["environment"]
        # The file is valid, stable-key JSON (the CI artifact contract).
        assert json.loads(path.read_text())["suite"] == "unit"

    def test_merge_write_replaces_own_records_and_keeps_the_rest(self, tmp_path):
        path = tmp_path / "BENCH_unit.json"
        first = PerfSuite("unit")
        first.derive("kept", 1.0)
        first.derive("replaced", 2.0)
        first.write(path)

        second = PerfSuite("unit")
        second.derive("replaced", 20.0)
        second.derive("added", 30.0)
        second.merge_write(path)

        by_name = {
            record["name"]: record["value"]
            for record in load_report(path)["results"]
        }
        assert by_name == {"kept": 1.0, "replaced": 20.0, "added": 30.0}

    def test_merge_write_into_a_missing_file_degrades_to_write(self, tmp_path):
        suite = PerfSuite("unit")
        suite.derive("only", 5.0)
        path = suite.merge_write(tmp_path / "BENCH_new.json")
        report = load_report(path)
        assert [record["name"] for record in report["results"]] == ["only"]

    def test_merge_write_over_garbage_degrades_to_write(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json", encoding="utf-8")
        suite = PerfSuite("unit")
        suite.derive("only", 5.0)
        suite.merge_write(path)
        assert load_report(path)["results"][0]["name"] == "only"

    def test_format_summary_mentions_every_record(self):
        suite = PerfSuite("unit")
        suite.measure("noop", lambda: None, number=2, repeat=1)
        suite.derive("speedup", 2.0)
        text = suite.format_summary()
        assert "noop" in text and "speedup" in text


class TestCompare:
    def test_ratios_only_for_shared_records(self):
        current = {"results": [{"name": "a", "value": 2.0}, {"name": "b", "value": 1.0}]}
        baseline = {"results": [{"name": "a", "value": 1.0}]}
        assert compare_to_baseline(current, baseline) == {"a": 2.0}
