"""Tests for the crash-if-slower bench gate (benchmarks/compare_bench.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_bench",
    Path(__file__).resolve().parent.parent.parent / "benchmarks" / "compare_bench.py",
)
compare_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_bench)


def report(unit: str = "s", **values: float) -> dict:
    return {
        "suite": "segment_kernels",
        "results": [
            {"name": name, "value": value, "unit": unit}
            for name, value in values.items()
        ],
    }


class TestCheck:
    def test_within_limit_passes(self):
        failures, warnings = compare_bench.check(
            report(engine_per_query_warm=100e-6),
            report(engine_per_query_warm=150e-6),
            [("engine_per_query_warm", 2.0)],
        )
        assert failures == [] and warnings == []

    def test_regression_beyond_limit_fails(self):
        failures, _ = compare_bench.check(
            report(engine_per_query_warm=100e-6),
            report(engine_per_query_warm=250e-6),
            [("engine_per_query_warm", 2.0)],
        )
        assert len(failures) == 1
        assert "engine_per_query_warm" in failures[0]
        assert "2.50x" in failures[0]

    def test_metric_missing_from_baseline_warns_only(self):
        failures, warnings = compare_bench.check(
            report(other_metric=1.0),
            report(engine_per_query_warm=100e-6),
            [("engine_per_query_warm", 2.0)],
        )
        assert failures == []
        assert len(warnings) == 1

    def test_metric_missing_from_current_fails(self):
        failures, _ = compare_bench.check(
            report(engine_per_query_warm=100e-6),
            report(other_metric=1.0),
            [("engine_per_query_warm", 2.0)],
        )
        assert len(failures) == 1
        assert "missing" in failures[0]

    def test_metric_missing_from_both_warns_only(self):
        # A first-run gate: the metric's bench has never written a baseline
        # and did not run this time either — skip, don't fail.
        failures, warnings = compare_bench.check(
            report(engine_per_query_warm=100e-6),
            report(engine_per_query_warm=110e-6),
            [("engine_per_query_warm", 2.0), ("router_throughput_qps", 2.0)],
        )
        assert failures == []
        assert len(warnings) == 1
        assert "router_throughput_qps" in warnings[0]

    def test_current_only_metric_listed_as_new_in_table(self):
        table = compare_bench.format_table(
            report(engine_per_query_warm=100e-6),
            report(unit="qps", engine_per_query_warm=100e-6, router_throughput_qps=5e4),
        )
        assert "router_throughput_qps" in table
        assert "(new)" in table

    def test_throughput_units_invert_the_direction(self):
        # qps is higher-is-better: dropping to 40% of the baseline is a 2.5x
        # regression even though current/baseline would read as 0.4.
        failures, _ = compare_bench.check(
            report(unit="qps", batch_throughput_qps=1000.0),
            report(unit="qps", batch_throughput_qps=400.0),
            [("batch_throughput_qps", 2.0)],
        )
        assert len(failures) == 1
        assert "2.50x" in failures[0] and "qps" in failures[0]

    def test_throughput_within_limit_passes(self):
        failures, warnings = compare_bench.check(
            report(unit="qps", batch_throughput_qps=1000.0),
            report(unit="qps", batch_throughput_qps=600.0),
            [("batch_throughput_qps", 2.0)],
        )
        assert failures == [] and warnings == []

    def test_throughput_improvement_passes(self):
        failures, _ = compare_bench.check(
            report(unit="qps", batch_throughput_qps=1000.0),
            report(unit="qps", batch_throughput_qps=9000.0),
            [("batch_throughput_qps", 2.0)],
        )
        assert failures == []

    def test_zero_current_throughput_fails(self):
        failures, _ = compare_bench.check(
            report(unit="qps", batch_throughput_qps=1000.0),
            report(unit="qps", batch_throughput_qps=0.0),
            [("batch_throughput_qps", 2.0)],
        )
        assert len(failures) == 1 and "zero" in failures[0]

    def test_speedup_unit_also_inverts(self):
        failures, _ = compare_bench.check(
            report(unit="x", speedup=10.0),
            report(unit="x", speedup=3.0),
            [("speedup", 2.0)],
        )
        assert len(failures) == 1

    def test_multiple_gates_evaluate_independently(self):
        failures, _ = compare_bench.check(
            report(a=1.0, b=1.0),
            report(a=1.5, b=3.0),
            [("a", 2.0), ("b", 2.0)],
        )
        assert len(failures) == 1 and "b" in failures[0]


class TestMain:
    def _write(self, path: Path, payload: dict) -> Path:
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_main_passes_and_prints_table(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "baseline.json", report(engine_per_query_warm=100e-6))
        current = self._write(tmp_path / "current.json", report(engine_per_query_warm=90e-6))
        code = compare_bench.main(["--baseline", str(baseline), "--current", str(current)])
        out = capsys.readouterr().out
        assert code == 0
        assert "engine_per_query_warm" in out
        assert "[ok]" in out

    def test_main_fails_on_regression(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "baseline.json", report(engine_per_query_warm=100e-6))
        current = self._write(tmp_path / "current.json", report(engine_per_query_warm=900e-6))
        code = compare_bench.main(["--baseline", str(baseline), "--current", str(current)])
        assert code == 1
        assert "[FAIL]" in capsys.readouterr().out

    def test_main_with_explicit_gates(self, tmp_path):
        baseline = self._write(tmp_path / "baseline.json", report(a=1.0, b=1.0))
        current = self._write(tmp_path / "current.json", report(a=1.1, b=1.2))
        code = compare_bench.main([
            "--baseline", str(baseline), "--current", str(current),
            "--metric", "a", "--metric", "b", "--max-ratio", "1.5",
        ])
        assert code == 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
