"""Integration-style unit tests for the database façade."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.engine.result import QueryResult
from repro.engine.session import Session
from repro.util.units import KB


@pytest.fixture
def database() -> Database:
    rng = np.random.default_rng(101)
    n = 30_000
    database = Database()
    database.create_table("p", {"objid": "int64", "ra": "float64", "dec": "float64"})
    database.bulk_load(
        "p",
        {
            "objid": np.arange(n, dtype=np.int64),
            "ra": rng.uniform(0, 360, n),
            "dec": rng.uniform(-90, 90, n),
        },
    )
    return database


def brute(database: Database, low: float, high: float) -> np.ndarray:
    ra = database.catalog.column("p", "ra").bind(0).tail
    objid = database.catalog.column("p", "objid").bind(0).tail
    return objid[(ra >= low) & (ra <= high)]


class TestSchemaAndLoading:
    def test_table_names_lowercased(self, database):
        assert database.table_names() == ["p"]
        result = database.execute("SELECT OBJID FROM P WHERE RA BETWEEN 10 AND 20")
        assert isinstance(result, QueryResult)

    def test_drop_table_removes_adaptive_state(self, database):
        database.enable_adaptive_segmentation("p", "ra")
        database.drop_table("p")
        assert database.table_names() == []
        assert database.bpm.handles() == []

    def test_insert_and_delete_visible_through_sql(self, database):
        database.insert(
            "p",
            {
                "objid": np.array([10_000_000], dtype=np.int64),
                "ra": np.array([180.5]),
                "dec": np.array([0.0]),
            },
        )
        result = database.execute("SELECT objid FROM p WHERE ra BETWEEN 180.49 AND 180.51")
        assert 10_000_000 in result.column("objid").tolist()
        existing = brute(database, 10, 11)
        database.delete("p", existing[:1])
        result = database.execute("SELECT objid FROM p WHERE ra BETWEEN 10 AND 11")
        assert existing[0] not in result.column("objid").tolist()


class TestQueryExecution:
    def test_projection_matches_brute_force(self, database):
        result = database.execute("SELECT objid FROM p WHERE ra BETWEEN 120 AND 125")
        assert sorted(result.column("objid")) == sorted(brute(database, 120, 125))

    def test_multi_column_projection(self, database):
        result = database.execute("SELECT objid, dec FROM p WHERE ra BETWEEN 10 AND 12")
        assert result.column_names == ["objid", "dec"]
        assert result.row_count == brute(database, 10, 12).size

    def test_aggregate_query(self, database):
        result = database.execute("SELECT count(*) FROM p WHERE ra BETWEEN 0 AND 180")
        ra = database.catalog.column("p", "ra").bind(0).tail
        assert result.scalar("count(*)") == int(((ra >= 0) & (ra <= 180)).sum())

    def test_unknown_column_in_result_lookup(self, database):
        from repro.api.exceptions import ProgrammingError

        result = database.execute("SELECT objid FROM p WHERE ra BETWEEN 0 AND 1")
        with pytest.raises(ProgrammingError):
            result.column("missing")
        with pytest.raises(ProgrammingError):
            result.scalar("count(*)")

    def test_query_history_is_recorded(self, database):
        database.execute("SELECT objid FROM p WHERE ra BETWEEN 0 AND 1")
        database.execute("SELECT count(*) FROM p WHERE ra BETWEEN 0 AND 1")
        assert len(database.query_history) == 2
        assert database.query_history[0].total_seconds > 0

    def test_explain_returns_plan_text(self, database):
        plan = database.explain("SELECT objid FROM p WHERE ra BETWEEN 10 AND 20")
        assert plan.startswith("function user.")
        assert "algebra.uselect" in plan


class TestAdaptiveExecution:
    def test_results_identical_across_strategies(self, database):
        plain = database.execute("SELECT objid FROM p WHERE ra BETWEEN 33 AND 37")
        database.enable_adaptive_segmentation("p", "ra", m_min=2 * KB, m_max=8 * KB)
        rng = np.random.default_rng(5)
        for _ in range(20):
            low = float(rng.uniform(0, 350))
            database.execute(f"SELECT objid FROM p WHERE ra BETWEEN {low} AND {low + 4}")
        adapted = database.execute("SELECT objid FROM p WHERE ra BETWEEN 33 AND 37")
        assert sorted(adapted.column("objid")) == sorted(plain.column("objid"))

    def test_adaptation_time_reported(self, database):
        database.enable_adaptive_segmentation("p", "ra", m_min=2 * KB, m_max=8 * KB)
        result = database.execute("SELECT objid FROM p WHERE ra BETWEEN 100 AND 200")
        assert result.adaptation_seconds >= 0.0
        stats = database.last_adaptive_stats("p", "ra")
        assert stats is not None and stats.result_count == result.row_count

    def test_replication_through_engine_is_correct(self, database):
        expected = database.execute("SELECT objid FROM p WHERE ra BETWEEN 250 AND 255")
        database.enable_adaptive_replication("p", "ra", m_min=2 * KB, m_max=8 * KB)
        rng = np.random.default_rng(9)
        for _ in range(20):
            low = float(rng.uniform(0, 350))
            database.execute(f"SELECT objid FROM p WHERE ra BETWEEN {low} AND {low + 4}")
        result = database.execute("SELECT objid FROM p WHERE ra BETWEEN 250 AND 255")
        assert sorted(result.column("objid")) == sorted(expected.column("objid"))


class TestSession:
    def test_session_tracks_timings_and_results(self, database):
        session = Session(database)
        session.execute("SELECT objid FROM p WHERE ra BETWEEN 10 AND 20")
        session.execute("SELECT count(*) FROM p WHERE ra BETWEEN 10 AND 20")
        assert session.timings.queries == 2
        assert session.timings.total_seconds > 0
        assert session.timings.average_milliseconds > 0
        assert len(session.results) == 2
        session.reset_timings()
        assert session.timings.queries == 0

    def test_format_result_table_and_scalars(self, database):
        session = Session(database)
        rows = session.execute("SELECT objid, ra FROM p WHERE ra BETWEEN 10 AND 11")
        text = session.format_result(rows, limit=3)
        assert "objid" in text and "ra" in text
        scalars = session.execute("SELECT count(*) FROM p WHERE ra BETWEEN 10 AND 11")
        assert "count(*)" in session.format_result(scalars)

    def test_format_empty_result(self, database):
        session = Session(database)
        result = session.execute("SELECT objid FROM p WHERE ra BETWEEN 400 AND 500")
        assert session.format_result(result).startswith("")

    def test_result_to_rows(self, database):
        result = database.execute("SELECT objid, ra FROM p WHERE ra BETWEEN 10 AND 10.5")
        rows = result.to_rows(limit=5)
        assert all(len(row) == 2 for row in rows)
