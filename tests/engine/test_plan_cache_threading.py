"""Thread-safety of the plan cache under concurrent readers.

Snapshot reader threads resolve prepared templates through the shared
:class:`PlanCache` while the owner thread may ``clear()`` it (DDL, adaptive
registration).  These tests hammer exactly that interleaving: the store and
its counters must stay consistent, and a generation observed *before* a
lookup must let the caller detect a concurrent clear afterwards.
"""

from __future__ import annotations

import threading

from repro.engine.plan_cache import PlanCache


def _hammer(threads: int, fn) -> list[BaseException]:
    """Run ``fn(worker_index)`` on N threads, collecting any exceptions."""
    errors: list[BaseException] = []
    barrier = threading.Barrier(threads)

    def body(index: int) -> None:
        barrier.wait()
        try:
            fn(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced via the list
            errors.append(exc)

    workers = [threading.Thread(target=body, args=(i,)) for i in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    return errors


def test_concurrent_get_put_keeps_store_and_counters_consistent():
    cache = PlanCache(capacity=32)
    rounds = 400

    def churn(index: int) -> None:
        for i in range(rounds):
            key = ("shape", f"worker-{index}-{i % 48}")
            if cache.get(key) is None:
                cache.put(key, object())
            cache.level_stats()

    errors = _hammer(4, churn)
    assert not errors, errors
    stats = cache.stats
    # Every lookup was counted exactly once somewhere.
    assert stats.hits + stats.misses == 4 * rounds
    # The LRU never overshoots its bound, even under concurrent inserts.
    assert len(cache) <= cache.capacity
    per_level = cache.level_stats()
    assert per_level["shape"].hits == stats.hits
    assert per_level["shape"].misses == stats.misses


def test_clear_during_reads_never_serves_ghosts_and_bumps_generation():
    cache = PlanCache(capacity=64)
    stop = threading.Event()
    rounds = 300

    def reader(index: int) -> None:
        if index == 0:  # one writer thread clears repeatedly
            for _ in range(rounds):
                cache.clear()
            stop.set()
            return
        while not stop.is_set():
            key = ("prepared", f"q{index}")
            generation = cache.generation
            plan = cache.get(key)
            if plan is None:
                cache.put(key, ("plan", generation))
                continue
            _, seen = plan
            # The generation race the lock must make detectable: a plan
            # installed under generation G may be served after a clear, but
            # then the *current* generation has moved on — stale handles
            # re-prepare off exactly this comparison in Database.
            assert seen <= cache.generation

    errors = _hammer(4, reader)
    assert not errors, errors
    assert cache.generation >= rounds  # every clear() bumped it


def test_generation_is_monotone_under_concurrent_clears():
    cache = PlanCache()
    observed: list[list[int]] = [[] for _ in range(4)]

    def clearer(index: int) -> None:
        for _ in range(200):
            cache.clear()
            observed[index].append(cache.generation)

    errors = _hammer(4, clearer)
    assert not errors, errors
    for track in observed:
        assert track == sorted(track), "generation went backwards on one thread"
    # 4 threads x 200 clears: no bump may be lost.
    assert cache.generation == 800
