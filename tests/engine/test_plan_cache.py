"""Tests for the LRU plan cache and the batched ``execute_many`` path."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.engine.plan_cache import PlanCache, normalize_sql
from repro.engine.session import Session
from repro.util.units import KB


@pytest.fixture
def database() -> Database:
    rng = np.random.default_rng(17)
    db = Database()
    db.create_table("p", {"objid": "int64", "ra": "float64"})
    db.bulk_load(
        "p",
        {
            "objid": np.arange(20_000, dtype=np.int64),
            "ra": rng.uniform(0.0, 360.0, size=20_000),
        },
    )
    return db


def _rows(result):
    return sorted(map(tuple, zip(*(result.columns[name] for name in result.column_names))))


class TestNormalizeSql:
    def test_collapses_whitespace_and_case(self):
        assert normalize_sql("SELECT  x\nFROM   t") == normalize_sql("select x from t")

    def test_distinct_constants_stay_distinct(self):
        assert normalize_sql("select x from t where x < 1") != normalize_sql(
            "select x from t where x < 2"
        )


class TestPlanCacheUnit:
    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.put("a", "plan-a")
        cache.put("b", "plan-b")
        assert cache.get("a") == "plan-a"  # refreshes a
        cache.put("c", "plan-c")  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == "plan-a"
        assert cache.evictions == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_stats_snapshot(self):
        cache = PlanCache(capacity=4)
        cache.put("a", "plan")
        cache.get("a")
        cache.get("missing")
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1 and stats.size == 1
        assert stats.hit_ratio == 0.5


class TestExecuteWithCache:
    SQL = "SELECT objid FROM p WHERE ra BETWEEN 10.0 AND 40.0"

    def test_second_execution_hits_and_answers_identically(self, database):
        first = database.execute(self.SQL)
        second = database.execute(self.SQL)
        assert not first.plan_cache_hit
        assert second.plan_cache_hit
        assert _rows(first) == _rows(second)
        assert second.plan_cache_hits == 1

    def test_whitespace_and_case_variants_share_a_plan(self, database):
        database.execute(self.SQL)
        variant = database.execute("select objid  from p where ra between 10.0 and 40.0")
        assert variant.plan_cache_hit

    def test_enabling_adaptive_invalidates_cached_plans(self, database):
        plain = database.execute(self.SQL)
        database.enable_adaptive("p", "ra", strategy="segmentation", m_min=2 * KB, m_max=8 * KB)
        adapted = database.execute(self.SQL)
        assert not adapted.plan_cache_hit  # the cache was cleared
        assert "bpm." in adapted.plan_text  # and the new plan is segment-aware
        assert _rows(plain) == _rows(adapted)
        again = database.execute(self.SQL)
        assert again.plan_cache_hit
        assert _rows(again) == _rows(plain)

    def test_cached_adaptive_plan_still_adapts(self, database):
        database.enable_adaptive("p", "ra", strategy="segmentation", m_min=1 * KB, m_max=4 * KB)
        for _ in range(3):
            database.execute(self.SQL)
        handle = database.adaptive_handle("p", "ra")
        assert len(handle.adaptive.history) == 3

    def test_aggregates_are_cacheable(self, database):
        first = database.execute("SELECT COUNT(*) FROM p WHERE ra < 100.0")
        second = database.execute("SELECT COUNT(*) FROM p WHERE ra < 100.0")
        assert second.plan_cache_hit
        assert first.scalar("count(*)") == second.scalar("count(*)")


class TestExecuteMany:
    # Overlapping/touching ranges on p.ra: one cluster, one shared scan.
    STATEMENTS = [
        "SELECT objid FROM p WHERE ra BETWEEN 10.0 AND 40.0",
        "SELECT objid, ra FROM p WHERE ra BETWEEN 30.0 AND 60.0",
        "SELECT objid FROM p WHERE ra > 55.0",
        "SELECT objid FROM p WHERE ra = 42.0",
    ]

    def _reference(self, statements):
        rng = np.random.default_rng(17)
        db = Database()
        db.create_table("p", {"objid": "int64", "ra": "float64"})
        db.bulk_load(
            "p",
            {
                "objid": np.arange(20_000, dtype=np.int64),
                "ra": rng.uniform(0.0, 360.0, size=20_000),
            },
        )
        return [db.execute(sql) for sql in statements]

    def test_batched_results_match_individual_execution(self, database):
        batched = database.execute_many(self.STATEMENTS)
        reference = self._reference(self.STATEMENTS)
        assert all(result.batched for result in batched)
        for got, expected in zip(batched, reference):
            assert got.column_names == expected.column_names
            assert _rows(got) == _rows(expected)

    def test_batched_results_match_on_an_adaptive_column(self, database):
        database.enable_adaptive("p", "ra", strategy="segmentation", m_min=2 * KB, m_max=8 * KB)
        batched = database.execute_many(self.STATEMENTS)
        reference = self._reference(self.STATEMENTS)
        for got, expected in zip(batched, reference):
            assert _rows(got) == _rows(expected)

    def test_disjoint_ranges_batch_without_over_scan(self, database):
        """Disjoint ranges batch through the vectorized path, answered exactly."""
        statements = [
            "SELECT objid FROM p WHERE ra BETWEEN 0.0 AND 1.0",
            "SELECT objid FROM p WHERE ra BETWEEN 350.0 AND 351.0",
        ]
        results = database.execute_many(statements)
        assert all(result.batched for result in results)
        reference = self._reference(statements)
        for got, expected in zip(results, reference):
            assert _rows(got) == _rows(expected)

    def test_results_come_back_in_input_order(self, database):
        statements = [
            "SELECT COUNT(*) FROM p",  # not batchable (aggregate)
            "SELECT objid FROM p WHERE ra BETWEEN 10.0 AND 40.0",
            "SELECT objid FROM p WHERE ra BETWEEN 30.0 AND 60.0",
        ]
        results = database.execute_many(statements)
        assert [result.sql for result in results] == statements
        assert not results[0].batched
        assert results[1].batched and results[2].batched
        assert [r.sql for r in database.query_history] == statements

    def test_single_member_groups_take_the_conventional_path(self, database):
        results = database.execute_many(["SELECT objid FROM p WHERE ra < 10.0"])
        assert not results[0].batched

    def test_tables_with_deltas_fall_back(self, database):
        database.insert("p", {"objid": np.array([99_999]), "ra": np.array([10.5])})
        results = database.execute_many(self.STATEMENTS[:2])
        assert not any(result.batched for result in results)
        direct = database.execute(self.STATEMENTS[0])
        assert _rows(results[0]) == _rows(direct)

    def test_batch_disabled_runs_conventionally(self, database):
        results = database.execute_many(self.STATEMENTS[:2], batch=False)
        assert not any(result.batched for result in results)

    def test_invalid_statement_raises_the_usual_error(self, database):
        with pytest.raises(Exception):
            database.execute_many(["SELECT objid FROM nowhere WHERE x < 1"])

    def test_session_execute_many_records_timings(self, database):
        session = Session(database)
        results = session.execute_many(self.STATEMENTS[:2])
        assert session.timings.queries == 2
        assert len(session.results) == 2
        assert all(result.batched for result in results)
        assert session.plan_cache_stats.capacity == database.plan_cache.capacity


class TestGenerationCounter:
    def test_clear_advances_generation_even_when_empty(self):
        cache = PlanCache(capacity=4)
        assert cache.generation == 0
        cache.clear()  # empty clear still invalidates external handles
        assert cache.generation == 1
        cache.put("a", "plan")
        cache.clear()
        assert cache.generation == 2
        assert cache.invalidations == 1  # only the non-empty clear counts

    def test_schema_and_adaptive_changes_advance_generation(self, database):
        generation = database.plan_cache.generation
        database.enable_adaptive("p", "ra", m_min=4 * KB, m_max=16 * KB)
        assert database.plan_cache.generation == generation + 1
        database.disable_adaptive("p", "ra")
        assert database.plan_cache.generation == generation + 2


class TestSessionExecutemanyDeprecation:
    def test_executemany_warns_and_keeps_per_query_contract(self, database):
        session = Session(database)
        statements = [
            "SELECT objid FROM p WHERE ra BETWEEN 10.0 AND 20.0",
            "SELECT objid FROM p WHERE ra BETWEEN 15.0 AND 25.0",
        ]
        with pytest.warns(DeprecationWarning, match="execute_many"):
            results = session.executemany(statements)
        # batch=False: every statement took the full per-query path.
        assert [result.batched for result in results] == [False, False]
        assert session.timings.queries == 2
