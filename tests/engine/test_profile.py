"""Tests for the per-stage query profiler and the compiled fast path."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.engine.profile import STAGES, QueryProfile
from repro.util.units import KB


@pytest.fixture
def database() -> Database:
    rng = np.random.default_rng(31)
    db = Database()
    db.create_table("p", {"objid": "int64", "ra": "float64", "dec": "float64"})
    db.bulk_load(
        "p",
        {
            "objid": np.arange(25_000, dtype=np.int64),
            "ra": rng.uniform(0.0, 360.0, 25_000),
            "dec": rng.uniform(-90.0, 90.0, 25_000),
        },
    )
    return db


def brute(db, low, high):
    ra = db.catalog.column("p", "ra").bind(0).tail
    objid = db.catalog.column("p", "objid").bind(0).tail
    return sorted(objid[(ra >= low) & (ra <= high)])


class TestQueryProfile:
    def test_cold_query_profiles_every_stage(self, database):
        result = database.execute("SELECT objid FROM p WHERE ra BETWEEN 10 AND 20")
        profile = result.profile
        assert profile is not None and profile.cold
        assert profile.parse_seconds > 0
        assert profile.compile_seconds > 0
        assert profile.optimize_seconds > 0
        assert profile.execute_seconds > 0
        assert profile.total_seconds >= profile.execute_seconds
        assert profile.plan_seconds == pytest.approx(
            profile.parse_seconds + profile.optimize_seconds + profile.compile_seconds
        )

    def test_warm_query_skips_compile_and_optimize(self, database):
        database.execute("SELECT objid FROM p WHERE ra BETWEEN 10 AND 20")
        warm = database.execute("SELECT objid FROM p WHERE ra BETWEEN 200 AND 220")
        profile = warm.profile
        assert not profile.cold
        assert warm.plan_cache_hit
        assert profile.compile_seconds == 0.0
        assert profile.optimize_seconds == 0.0
        assert profile.parse_seconds > 0  # the masked-text fast path still scans
        assert profile.execute_seconds > 0

    def test_exact_repeat_skips_even_the_parse(self, database):
        database.execute("SELECT objid FROM p WHERE ra BETWEEN 10 AND 20")
        database.execute("SELECT objid FROM p WHERE ra BETWEEN 10 AND 20")
        repeat = database.execute("SELECT objid FROM p WHERE ra BETWEEN 10 AND 20")
        assert repeat.plan_cache_hit
        assert repeat.profile.parse_seconds == 0.0

    def test_stage_seconds_keys_are_the_pipeline_stages(self, database):
        result = database.execute("SELECT objid FROM p WHERE ra BETWEEN 10 AND 20")
        assert tuple(result.profile.stage_seconds()) == STAGES

    def test_opcode_counts_reflect_the_plan(self, database):
        result = database.execute("SELECT objid FROM p WHERE ra BETWEEN 10 AND 20")
        counts = result.profile.opcode_counts
        assert counts["algebra.uselect"] == 3  # one per bind level
        assert counts["sql.exportResult"] == 1
        assert all(count > 0 for count in counts.values())

    def test_format_renders_stages_and_temperature(self, database):
        result = database.execute("SELECT objid FROM p WHERE ra BETWEEN 10 AND 20")
        text = result.profile.format()
        assert "cold" in text
        for stage in STAGES:
            assert stage in text
        assert "opcodes" in text

    def test_empty_profile_has_empty_opcode_counts(self):
        assert QueryProfile().opcode_counts == {}


class TestShapeWarmPath:
    def test_literal_variants_hit_the_cache_and_answer_correctly(self, database):
        database.execute("SELECT objid FROM p WHERE ra BETWEEN 10 AND 20")
        for low, high in [(0.5, 3.25), (200, 220), (355.0, 360.0), (42.0, 42.5)]:
            result = database.execute(f"SELECT objid FROM p WHERE ra BETWEEN {low} AND {high}")
            assert result.plan_cache_hit, (low, high)
            assert sorted(result.column("objid")) == brute(database, low, high)

    def test_comparison_shapes_are_parameterized_too(self, database):
        cold = database.execute("SELECT objid FROM p WHERE ra < 10")
        warm = database.execute("SELECT objid FROM p WHERE ra < 250")
        assert not cold.plan_cache_hit and warm.plan_cache_hit
        ra = database.catalog.column("p", "ra").bind(0).tail
        objid = database.catalog.column("p", "objid").bind(0).tail
        assert sorted(warm.column("objid")) == sorted(objid[ra < 250])

    def test_equality_shape_binds_one_parameter_twice(self, database):
        value = float(database.catalog.column("p", "ra").bind(0).tail[7])
        database.execute("SELECT objid FROM p WHERE ra = 1.5")
        warm = database.execute(f"SELECT objid FROM p WHERE ra = {value!r}")
        assert warm.plan_cache_hit
        assert 7 in warm.column("objid").tolist()

    def test_aggregates_on_the_warm_path(self, database):
        database.execute("SELECT count(*) FROM p WHERE ra BETWEEN 0 AND 100")
        warm = database.execute("SELECT count(*) FROM p WHERE ra BETWEEN 50 AND 200")
        assert warm.plan_cache_hit
        assert warm.scalar("count(*)") == len(brute(database, 50, 200))

    def test_invalid_range_raises_even_when_the_shape_is_warm(self, database):
        database.execute("SELECT objid FROM p WHERE ra BETWEEN 10 AND 20")
        with pytest.raises(ValueError, match="high < low"):
            database.execute("SELECT objid FROM p WHERE ra BETWEEN 20 AND 10")

    def test_adaptive_rewrite_still_applies_on_warm_shapes(self, database):
        database.enable_adaptive("p", "ra", strategy="segmentation",
                                 m_min=2 * KB, m_max=8 * KB)
        database.execute("SELECT objid FROM p WHERE ra BETWEEN 10 AND 20")
        warm = database.execute("SELECT objid FROM p WHERE ra BETWEEN 100 AND 140")
        assert warm.plan_cache_hit
        assert "bpm.newIterator" in warm.plan_text
        assert sorted(warm.column("objid")) == brute(database, 100, 140)
        handle = database.adaptive_handle("p", "ra")
        assert len(handle.adaptive.history) == 2  # the cached plan still adapts

    def test_limit_shapes_never_install_the_masked_fast_path(self, database):
        database.execute("SELECT objid FROM p WHERE ra BETWEEN 10 AND 20 LIMIT 5")
        # A different limit is a different shape: it must not reuse the
        # masked text of the first statement.
        second = database.execute("SELECT objid FROM p WHERE ra BETWEEN 10 AND 20 LIMIT 9")
        assert not second.plan_cache_hit


class TestContextPooling:
    def test_results_are_independent_across_pooled_executions(self, database):
        first = database.execute("SELECT objid, ra FROM p WHERE ra BETWEEN 10 AND 20")
        snapshot = {name: column.copy() for name, column in first.columns.items()}
        database.execute("SELECT objid, ra FROM p WHERE ra BETWEEN 300 AND 320")
        for name, column in first.columns.items():
            assert np.array_equal(column, snapshot[name])

    def test_scalars_do_not_leak_between_queries(self, database):
        database.execute("SELECT count(*) FROM p WHERE ra BETWEEN 0 AND 100")
        projection = database.execute("SELECT objid FROM p WHERE ra BETWEEN 0 AND 1")
        assert projection.scalars == {}

    def test_contexts_are_reused(self, database):
        database.execute("SELECT objid FROM p WHERE ra BETWEEN 10 AND 20")
        pooled = database._context_pool[0]
        database.execute("SELECT objid FROM p WHERE ra BETWEEN 10 AND 20")
        assert database._context_pool[0] is pooled
