"""The engine's vectorized batch executor and plan-cache observability."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.engine.database import Database
from repro.util.units import KB


@pytest.fixture
def database() -> Database:
    rng = np.random.default_rng(23)
    db = Database()
    db.create_table("p", {"objid": "int64", "ra": "float64"})
    db.bulk_load(
        "p",
        {
            "objid": np.arange(10_000, dtype=np.int64),
            "ra": rng.uniform(0.0, 360.0, size=10_000),
        },
    )
    return db


def _rows(result):
    return sorted(map(tuple, zip(*(result.columns[name] for name in result.column_names))))


def _reference(statements):
    rng = np.random.default_rng(23)
    db = Database()
    db.create_table("p", {"objid": "int64", "ra": "float64"})
    db.bulk_load(
        "p",
        {
            "objid": np.arange(10_000, dtype=np.int64),
            "ra": rng.uniform(0.0, 360.0, size=10_000),
        },
    )
    return [db.execute(sql) for sql in statements]


DISJOINT = [
    "SELECT objid FROM p WHERE ra BETWEEN 10.0 AND 12.0",
    "SELECT objid FROM p WHERE ra BETWEEN 100.0 AND 103.0",
    "SELECT objid FROM p WHERE ra BETWEEN 350.0 AND 351.0",
]
MIXED = [
    "SELECT objid FROM p WHERE ra BETWEEN 10.0 AND 40.0",
    "SELECT objid, ra FROM p WHERE ra BETWEEN 30.0 AND 60.0",
    "SELECT objid FROM p WHERE ra BETWEEN 200.0 AND 201.0",
    "SELECT objid FROM p WHERE ra > 355.0",
    "SELECT objid FROM p WHERE ra = 42.0",
]


class TestBatchExecutor:
    def test_disjoint_ranges_batch_on_plain_column(self, database):
        results = database.execute_many(DISJOINT)
        assert all(result.batched for result in results)
        assert all(result.cache_level == "batched" for result in results)
        for got, expected in zip(results, _reference(DISJOINT)):
            assert _rows(got) == _rows(expected)
        assert "sort-and-probe" in results[0].plan_text

    def test_overlapping_ranges_share_one_envelope_scan(self, database):
        statements = MIXED[:2]
        results = database.execute_many(statements)
        assert all(result.batched for result in results)
        assert "shared scan" in results[0].plan_text
        for got, expected in zip(results, _reference(statements)):
            assert _rows(got) == _rows(expected)

    def test_mixed_shapes_batch_on_plain_column(self, database):
        results = database.execute_many(MIXED)
        assert all(result.batched for result in results)
        for got, expected in zip(results, _reference(MIXED)):
            assert _rows(got) == _rows(expected)

    @pytest.mark.parametrize("strategy", ["segmentation", "replication", "unsegmented"])
    def test_batches_match_on_every_registered_strategy(self, database, strategy):
        database.enable_adaptive(
            "p", "ra", strategy=strategy, model="apm", m_min=2 * KB, m_max=8 * KB
        )
        results = database.execute_many(MIXED + DISJOINT)
        assert all(result.batched for result in results)
        for got, expected in zip(results, _reference(MIXED + DISJOINT)):
            assert _rows(got) == _rows(expected)

    def test_managed_batch_adapts_once_per_batch(self, database):
        handle = database.enable_adaptive(
            "p", "ra", strategy="segmentation", model="apm", m_min=2 * KB, m_max=8 * KB
        )
        results = database.execute_many(DISJOINT)
        assert all(result.batched for result in results)
        history = handle.adaptive.history
        assert len(history) == 1
        assert history[-1].batch_size == len(DISJOINT)
        assert handle.adaptive.segment_count > 1  # piggy-backed splits fired

    def test_prepared_many_batches_disjoint_bindings(self, database):
        prepared = database.prepare_statement(
            "SELECT objid FROM p WHERE ra BETWEEN ? AND ?"
        )
        bindings = [(10.0, 12.0), (100.0, 103.0), (350.0, 351.0)]
        results = database.execute_prepared_many(prepared, bindings)
        assert all(result.batched for result in results)
        assert [result.parameters for result in results] == bindings
        reference = _reference(
            [f"SELECT objid FROM p WHERE ra BETWEEN {low} AND {high}" for low, high in bindings]
        )
        for got, expected in zip(results, reference):
            assert _rows(got) == _rows(expected)


class TestExecuteWave:
    """The server front-end's engine hook: one wave, many plans, many clients."""

    def test_wave_of_mixed_prepared_statements(self, database):
        select = database.prepare_statement(
            "SELECT objid FROM p WHERE ra BETWEEN ? AND ?"
        )
        count = database.prepare_statement(
            "SELECT count(*) FROM p WHERE ra BETWEEN ? AND ?"
        )
        wave = [
            (select, (10.0, 12.0)),
            (count, (10.0, 12.0)),
            (select, (100.0, 103.0)),
            (select, (350.0, 351.0)),
        ]
        results = database.execute_wave(wave)
        assert len(results) == 4
        # The range selects batch; the aggregate falls back inside the wave.
        assert [result.batched for result in results] == [True, False, True, True]
        reference = _reference(
            [
                "SELECT objid FROM p WHERE ra BETWEEN 10.0 AND 12.0",
                "SELECT objid FROM p WHERE ra BETWEEN 100.0 AND 103.0",
                "SELECT objid FROM p WHERE ra BETWEEN 350.0 AND 351.0",
            ]
        )
        assert _rows(results[0]) == _rows(reference[0])
        assert _rows(results[2]) == _rows(reference[1])
        assert _rows(results[3]) == _rows(reference[2])
        assert results[1].scalars["count(*)"] == len(_rows(reference[0]))

    def test_batched_members_record_their_bound_parameters(self, database):
        prepared = database.prepare_statement(
            "SELECT objid FROM p WHERE ra BETWEEN ? AND ?"
        )
        bindings = [(10.0, 12.0), (100.0, 103.0)]
        results = database.execute_wave(
            [(prepared, values) for values in bindings]
        )
        assert all(result.batched for result in results)
        assert [result.parameters for result in results] == bindings

    def test_stale_plans_are_reprepared_once(self, database):
        prepared = database.prepare_statement(
            "SELECT objid FROM p WHERE ra BETWEEN ? AND ?"
        )
        # Invalidate every compiled plan: the wave must re-prepare, not fail.
        database.enable_adaptive(
            "p", "ra", strategy="segmentation", model="apm", m_min=2 * KB, m_max=8 * KB
        )
        assert prepared.generation != database.plan_cache.generation
        bindings = [(10.0, 12.0), (100.0, 103.0), (350.0, 351.0)]
        results = database.execute_wave([(prepared, values) for values in bindings])
        assert all(result.batched for result in results)
        reference = _reference(
            [
                f"SELECT objid FROM p WHERE ra BETWEEN {low} AND {high}"
                for low, high in bindings
            ]
        )
        for got, expected in zip(results, reference):
            assert _rows(got) == _rows(expected)

    def test_wave_updates_batch_stats(self, database):
        prepared = database.prepare_statement(
            "SELECT objid FROM p WHERE ra BETWEEN ? AND ?"
        )
        count = database.prepare_statement(
            "SELECT count(*) FROM p WHERE ra BETWEEN ? AND ?"
        )
        database.execute_wave(
            [
                (prepared, (10.0, 12.0)),
                (prepared, (100.0, 103.0)),
                (prepared, (350.0, 351.0)),
                (count, (10.0, 12.0)),
            ]
        )
        batch = database.cache_stats()["batch"]
        assert batch["waves"] == 1
        assert batch["batched_queries"] == 3
        assert batch["fallback_queries"] == 1
        assert batch["wave_size"] == {"min": 3, "max": 3, "mean": 3.0}
        assert batch["wave_size_histogram"]["2-4"] == 1

    def test_empty_wave_is_a_no_op(self, database):
        assert database.execute_wave([]) == []
        assert database.cache_stats()["batch"]["waves"] == 0


class TestBatchedProfiles:
    def test_batched_results_carry_a_real_profile(self, database):
        results = database.execute_many(DISJOINT)
        for result in results:
            assert result.profile is not None
            assert not result.profile.cold
            assert result.profile.execute_seconds == result.total_seconds
            assert result.profile.execute_seconds > 0.0

    def test_batch_cost_apportioned_across_members(self, database):
        results = database.execute_many(DISJOINT)
        shares = {result.profile.execute_seconds for result in results}
        assert len(shares) == 1  # equal shares of one batch
        total = sum(result.total_seconds for result in results)
        assert total == pytest.approx(results[0].total_seconds * len(results))

    def test_profile_format_on_a_batched_result(self, database):
        result = database.execute_many(DISJOINT)[0]
        rendered = result.profile.format()
        assert "query profile (warm)" in rendered
        assert "execute" in rendered
        assert "total" in rendered


class TestOverlapClusters:
    def test_strictly_overlapping_ranges_merge(self):
        clusters = Database._overlap_clusters([(10.0, 20.0), (19.0, 30.0)])
        assert clusters == [[0, 1]]

    def test_touching_at_nextafter_boundary_stays_separate(self):
        """Half-open ranges meeting at one nextafter boundary share no value."""
        boundary = math.nextafter(20.0, math.inf)
        clusters = Database._overlap_clusters([(10.0, boundary), (boundary, 30.0)])
        assert clusters == [[0], [1]]

    def test_exactly_touching_half_open_ranges_stay_separate(self):
        clusters = Database._overlap_clusters([(10.0, 20.0), (20.0, 30.0)])
        assert clusters == [[0], [1]]

    def test_cluster_positions_index_the_input(self):
        clusters = Database._overlap_clusters([(50.0, 60.0), (0.0, 10.0), (5.0, 7.0)])
        assert clusters == [[1, 2], [0]]


class TestCacheStats:
    def test_levels_and_totals(self, database):
        database.execute("SELECT objid FROM p WHERE ra BETWEEN 1.0 AND 2.0")  # cold
        database.execute("SELECT objid FROM p WHERE ra BETWEEN 1.0 AND 2.0")  # exact hit
        database.execute("SELECT objid FROM p WHERE ra BETWEEN 3.0 AND 4.0")  # masked hit
        prepared = database.prepare_statement(
            "SELECT objid FROM p WHERE ra BETWEEN ? AND ?"
        )
        database.execute_prepared(prepared, (5.0, 6.0))
        stats = database.cache_stats()
        levels = stats["levels"]
        assert levels["exact"]["hits"] == 1
        assert levels["masked"]["hits"] == 1
        assert levels["prepared"]["misses"] >= 1  # the prepare-time lookup
        assert levels["prepared"]["entries"] == 1
        assert levels["shape"]["entries"] == 1  # one shape shared by all paths
        total = stats["total"]
        assert total["hits"] == sum(level["hits"] for level in levels.values())
        assert total["misses"] == sum(level["misses"] for level in levels.values())
        assert total["size"] == sum(level["entries"] for level in levels.values())
        assert 0.0 <= total["hit_ratio"] <= 1.0

    def test_evictions_counted_per_level(self):
        db = Database(plan_cache_size=2)
        db.create_table("t", {"x": "float64"})
        db.bulk_load("t", {"x": np.arange(10, dtype=np.float64)})
        for low in range(5):
            db.execute(f"SELECT x FROM t WHERE x BETWEEN {low}.0 AND {low + 1}.5")
        stats = db.cache_stats()
        assert stats["total"]["evictions"] > 0
        assert stats["total"]["evictions"] == sum(
            level["evictions"] for level in stats["levels"].values()
        )

    def test_generation_advances_on_invalidation(self, database):
        before = database.cache_stats()["total"]["generation"]
        database.enable_adaptive("p", "ra", m_min=4 * KB, m_max=16 * KB)
        assert database.cache_stats()["total"]["generation"] == before + 1


class TestHalfOpenBoundsMany:
    def test_bit_identical_to_scalar_translation(self, database):
        from repro.optimizer.bpm import BatPartitionManager

        database.enable_adaptive("p", "ra", m_min=4 * KB, m_max=16 * KB)
        adaptive = database.adaptive_handle("p", "ra").adaptive
        bounds = [
            (10.0, 20.0, True, True),
            (10.0, 20.0, False, False),
            (-np.inf, 20.0, False, True),
            (20.0, np.inf, True, False),
            (42.0, 42.0, True, True),
            (-500.0, 999.0, True, True),  # clamped to the domain
        ]
        vectorized = Database._half_open_bounds_many(adaptive, bounds)
        for (low, high, incl, inch), row in zip(bounds, vectorized):
            expected = BatPartitionManager._half_open_bounds(
                adaptive, low, high, incl, inch
            )
            assert (float(row[0]), float(row[1])) == expected
