"""Unit tests for the execution context and query-result containers."""

import numpy as np
import pytest

from repro.engine.execution import ExecutionContext
from repro.engine.result import QueryResult
from repro.storage.bat import BAT
from repro.storage.catalog import Catalog


@pytest.fixture
def context() -> ExecutionContext:
    catalog = Catalog()
    catalog.create_table("p", {"x": np.float64})
    return ExecutionContext(catalog=catalog)


class TestExecutionContext:
    def test_result_set_ids_are_unique(self, context):
        first = context.new_result_set()
        second = context.new_result_set()
        assert first != second

    def test_only_exported_result_set_is_returned(self, context):
        hidden = context.new_result_set()
        context.add_result_column(hidden, "x", BAT(np.array([1.0])))
        visible = context.new_result_set()
        context.add_result_column(visible, "y", BAT(np.array([2.0, 3.0])))
        context.export_result(visible)
        columns = context.exported_columns()
        assert list(columns) == ["y"]
        assert columns["y"].tolist() == [2.0, 3.0]

    def test_exported_columns_are_copies(self, context):
        result_set = context.new_result_set()
        bat = BAT(np.array([1.0, 2.0]))
        context.add_result_column(result_set, "x", bat)
        context.export_result(result_set)
        exported = context.exported_columns()["x"]
        exported[0] = 99.0
        assert bat.tail[0] == 1.0

    def test_unknown_result_set_rejected(self, context):
        with pytest.raises(KeyError):
            context.add_result_column(7, "x", BAT(np.array([1.0])))
        with pytest.raises(KeyError):
            context.export_result(7)

    def test_export_scalar_coerces_numeric_types(self, context):
        context.export_scalar("count(*)", np.float64(4))
        context.export_scalar("sum(x)", 2)
        context.export_scalar("max(x)", np.int64(9))
        context.export_scalar("min(x)", np.float32(1.5))
        context.export_scalar("flag", True)
        assert context.scalars == {
            "count(*)": 4.0,
            "sum(x)": 2.0,
            "max(x)": 9.0,
            "min(x)": 1.5,
            "flag": 1.0,
        }
        assert all(type(value) is float for value in context.scalars.values())

    def test_export_scalar_rejects_non_numeric_values(self, context):
        for bad in ("12.5", None, object(), [1.0], np.array([1.0, 2.0])):
            with pytest.raises(TypeError, match="non-numeric"):
                context.export_scalar("sum(x)", bad)
        assert context.scalars == {}

    def test_reset_clears_state_and_recycles_result_sets(self, context):
        result_set = context.new_result_set()
        container = context.result_sets[result_set]
        context.add_result_column(result_set, "x", BAT(np.array([1.0])))
        context.export_result(result_set)
        context.export_scalar("count(*)", 3)
        context.variables = {"X_1": 1}
        context.reset()
        assert context.result_sets == {} and context.scalars == {}
        assert context.variables == {}
        assert context.exported_columns() == {}
        recycled = context.new_result_set()
        assert context.result_sets[recycled] is container  # scratch reuse
        assert context.result_sets[recycled].columns == {}
        assert not context.result_sets[recycled].exported


class TestQueryResult:
    def _result(self) -> QueryResult:
        return QueryResult(
            sql="SELECT a, b FROM t",
            columns={"a": np.array([1, 2, 3]), "b": np.array([4.0, 5.0, 6.0])},
            total_seconds=0.5,
            selection_seconds=0.2,
            adaptation_seconds=0.1,
        )

    def test_row_count_and_names(self):
        result = self._result()
        assert result.row_count == 3
        assert result.column_names == ["a", "b"]

    def test_aggregate_result_has_zero_rows(self):
        result = QueryResult(sql="SELECT count(*) FROM t", scalars={"count(*)": 9.0})
        assert result.row_count == 0
        assert result.scalar("count(*)") == 9.0

    def test_to_rows_respects_limit(self):
        result = self._result()
        assert result.to_rows(limit=2) == [(1, 4.0), (2, 5.0)]
        assert len(result.to_rows()) == 3
        assert QueryResult(sql="x").to_rows() == []

    def test_missing_column_and_scalar_errors_name_alternatives(self):
        from repro.api.exceptions import ProgrammingError

        result = self._result()
        with pytest.raises(ProgrammingError, match="available"):
            result.column("missing")
        with pytest.raises(ProgrammingError, match="available"):
            result.scalar("avg(a)")
