"""Property tests: the sorted zero-copy kernels match the legacy mask kernels.

The pre-zero-copy ``Segment`` answered selections with a boolean mask over an
unsorted payload and splits with a bucket scan.  These reference kernels are
reproduced here and every sorted-kernel result is required to be
*permutation-equal* to them — same multiset of ``(oid, value)`` pairs — for
random columns, domains and query ranges.  Oids must stay consistent with
values under every operation (``values[oid] == value`` for positional oids).
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ranges import ValueRange
from repro.core.segment import Segment, is_value_sorted
from repro.storage.bat import BAT
from repro.mal import operators

# -- reference (legacy) kernels ---------------------------------------------


def legacy_select(values, oids, low, high):
    mask = (values >= low) & (values < high)
    return values[mask], oids[mask]


def legacy_partition(values, oids, vrange, points):
    sub_ranges = vrange.split_at(points)
    cuts = [r.high for r in sub_ranges[:-1]]
    bucket = np.searchsorted(np.asarray(cuts), values, side="right")
    return [
        (sub, values[bucket == i], oids[bucket == i]) for i, sub in enumerate(sub_ranges)
    ]


def _pairs(values, oids):
    return sorted(zip(oids.tolist(), values.tolist()))


# -- strategies --------------------------------------------------------------

columns = st.integers(min_value=1, max_value=800)
seeds = st.integers(min_value=0, max_value=2**16)
domain_highs = st.integers(min_value=10, max_value=100_000)
dtypes = st.sampled_from([np.int32, np.int64, np.float64])


def _make(n, domain_high, dtype, seed):
    rng = np.random.default_rng(seed)
    if np.issubdtype(np.dtype(dtype), np.integer):
        values = rng.integers(0, domain_high, size=n).astype(dtype)
    else:
        values = rng.uniform(0, domain_high, size=n).astype(dtype)
    return values


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(n=columns, domain_high=domain_highs, dtype=dtypes, seed=seeds,
       q_lo=st.floats(min_value=-0.2, max_value=1.2, allow_nan=False),
       q_width=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_sorted_select_is_permutation_equal_to_mask_select(
    n, domain_high, dtype, seed, q_lo, q_width
):
    values = _make(n, domain_high, dtype, seed)
    oids = np.arange(n, dtype=np.int64)
    segment = Segment(ValueRange(0, domain_high), values)
    low = q_lo * domain_high
    high = low + q_width * domain_high
    result = segment.select(ValueRange(low, max(low, high)))
    expected_values, expected_oids = legacy_select(values, oids, low, max(low, high))
    assert _pairs(result.values, result.oids) == _pairs(expected_values, expected_oids)
    # oids stay consistent with values: each oid points at its original value.
    assert np.array_equal(values[result.oids], result.values)
    # and the sorted layout returns values ascending.
    assert is_value_sorted(result.values)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(n=columns, domain_high=domain_highs, dtype=dtypes, seed=seeds,
       points=st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False), max_size=5))
def test_sorted_partition_is_permutation_equal_to_bucket_partition(
    n, domain_high, dtype, seed, points
):
    values = _make(n, domain_high, dtype, seed)
    oids = np.arange(n, dtype=np.int64)
    vrange = ValueRange(0, domain_high)
    cut_points = [p * domain_high for p in points]
    segment = Segment(vrange, values)
    pieces = segment.partition(cut_points)
    expected = legacy_partition(values, oids, vrange, cut_points)
    assert [p.vrange for p in pieces] == [sub for sub, _, _ in expected]
    for piece, (_, exp_values, exp_oids) in zip(pieces, expected):
        assert _pairs(piece.values, piece.oids) == _pairs(exp_values, exp_oids)
        assert np.array_equal(values[piece.oids], piece.values)
        piece.check_invariants()
    # The pieces together conserve the original multiset of pairs.
    all_pairs = sorted(
        pair for piece in pieces for pair in zip(piece.oids.tolist(), piece.values.tolist())
    )
    assert all_pairs == _pairs(values, oids)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(n=columns, domain_high=domain_highs, dtype=dtypes, seed=seeds,
       q_lo=st.floats(min_value=-0.2, max_value=1.2, allow_nan=False),
       q_width=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
       include_low=st.booleans(), include_high=st.booleans())
def test_sorted_bat_select_matches_mask_select(
    n, domain_high, dtype, seed, q_lo, q_width, include_low, include_high
):
    values = _make(n, domain_high, dtype, seed)
    order = np.argsort(values, kind="stable")
    sorted_bat = BAT.from_pairs(order.astype(np.int64), values[order], tail_sorted=True)
    plain_bat = BAT.from_pairs(order.astype(np.int64), values[order])
    low = q_lo * domain_high
    high = low + q_width * domain_high
    fast = operators.select(sorted_bat, low, high,
                            include_low=include_low, include_high=include_high)
    slow = operators.select(plain_bat, low, high,
                            include_low=include_low, include_high=include_high)
    assert _pairs(fast.tail, fast.head) == _pairs(slow.tail, slow.head)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(n=columns, domain_high=domain_highs, dtype=dtypes, seed=seeds,
       value=st.floats(min_value=-10.0, max_value=1.2e5, allow_nan=False),
       operator=st.sampled_from(["<", "<=", ">", ">=", "=="]))
def test_sorted_thetaselect_matches_mask_thetaselect(n, domain_high, dtype, seed, value, operator):
    values = _make(n, domain_high, dtype, seed)
    order = np.argsort(values, kind="stable")
    sorted_bat = BAT.from_pairs(order.astype(np.int64), values[order], tail_sorted=True)
    plain_bat = BAT.from_pairs(order.astype(np.int64), values[order])
    fast = operators.thetaselect(sorted_bat, value, operator)
    slow = operators.thetaselect(plain_bat, value, operator)
    assert _pairs(fast.tail, fast.head) == _pairs(slow.tail, slow.head)
