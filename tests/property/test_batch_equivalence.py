"""Property: batch kernels are permutation-equal to per-query execution.

For every registered strategy, ``select_many`` over a batch of ranges —
overlapping, disjoint, duplicated and empty alike, drawn against uniform and
zipf-skewed columns — must return, per member, the same multiset of
``(oid, value)`` pairs that a fresh column of the same strategy returns when
the queries run one at a time through ``select``.  Two independent column
instances are compared so the batch path's adaptation (one pass per batch)
and the per-query path's adaptation (between queries) both run — adaptation
must never change answers.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.models import AdaptivePageModel
from repro.core.strategy import available_strategies, create_strategy, strategy_class
from repro.util.stats import zipf_probabilities
from repro.util.units import KB

DOMAIN_HIGH = 50_000.0

seeds = st.integers(min_value=0, max_value=2**16)
column_sizes = st.integers(min_value=1, max_value=3_000)
batch_sizes = st.integers(min_value=1, max_value=12)
distributions = st.sampled_from(["uniform", "zipf"])
strategy_names = st.sampled_from(available_strategies())


def _make_column_values(size: int, distribution: str, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if distribution == "zipf":
        buckets = 64
        probabilities = zipf_probabilities(buckets, 1.1)
        bucket = rng.choice(buckets, size=size, p=probabilities)
        width = DOMAIN_HIGH / buckets
        return (bucket * width + rng.uniform(0.0, width, size=size)).astype(np.int32)
    return rng.integers(0, int(DOMAIN_HIGH), size=size).astype(np.int32)


def _make_bounds(n: int, seed: int) -> list[tuple[float, float]]:
    """Overlapping, disjoint, duplicate and empty ranges, randomly mixed."""
    rng = np.random.default_rng(seed)
    bounds: list[tuple[float, float]] = []
    for _ in range(n):
        kind = rng.integers(0, 4)
        low = float(rng.uniform(0.0, DOMAIN_HIGH))
        if kind == 0:  # wide (likely overlapping something)
            bounds.append((low, float(low + rng.uniform(0.0, DOMAIN_HIGH / 2))))
        elif kind == 1:  # narrow
            bounds.append((low, float(low + rng.uniform(0.0, 50.0))))
        elif kind == 2:  # empty
            bounds.append((low, low))
        else:  # duplicate of an earlier range when one exists
            bounds.append(bounds[rng.integers(0, len(bounds))] if bounds else (low, low + 10.0))
    return bounds


def _build(name: str, values: np.ndarray):
    cls = strategy_class(name)
    model = AdaptivePageModel(m_min=1 * KB, m_max=4 * KB) if cls.requires_model else None
    return create_strategy(name, values, model=model)


def _pairs(result):
    return sorted(zip(result.oids.tolist(), np.asarray(result.values).tolist()))


@given(
    strategy=strategy_names,
    distribution=distributions,
    size=column_sizes,
    n_queries=batch_sizes,
    seed=seeds,
)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_select_many_permutation_equal_to_select(
    strategy, distribution, size, n_queries, seed
):
    values = _make_column_values(size, distribution, seed)
    bounds = _make_bounds(n_queries, seed + 1)
    batch_column = _build(strategy, values.copy())
    serial_column = _build(strategy, values.copy())
    batch_results = batch_column.select_many(bounds)
    assert len(batch_results) == len(bounds)
    for (low, high), got in zip(bounds, batch_results):
        expected = serial_column.select(low, high)
        assert _pairs(got) == _pairs(expected)
        assert got.count == expected.count
    batch_column.check_invariants()
    serial_column.check_invariants()
