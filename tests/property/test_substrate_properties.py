"""Property-based tests for the substrate layers (operators, buffer, workloads)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mal import operators
from repro.storage.bat import BAT
from repro.storage.buffer import BufferPool
from repro.workloads.generators import uniform_workload, zipf_workload

values_strategy = st.lists(
    st.integers(min_value=0, max_value=1_000), min_size=0, max_size=200
)


@settings(max_examples=60, deadline=None)
@given(values=values_strategy, low=st.integers(0, 1_000), width=st.integers(0, 500))
def test_select_equals_numpy_filter(values, low, width):
    bat = BAT(np.array(values, dtype=np.int64))
    high = low + width
    result = operators.select(bat, low, high)
    expected = [v for v in values if low <= v < high]
    assert sorted(result.tail.tolist()) == sorted(expected)
    # The oid/value pairing survives selection.
    original = dict(enumerate(values))
    for oid, value in zip(result.head.tolist(), result.tail.tolist()):
        assert original[oid] == value


@settings(max_examples=60, deadline=None)
@given(left=values_strategy, right=values_strategy)
def test_kunion_and_kdifference_behave_like_sets(left, right):
    left_bat = BAT(np.array(left, dtype=np.int64))
    right_bat = BAT.from_pairs(
        np.arange(1_000, 1_000 + len(right), dtype=np.int64), np.array(right, dtype=np.int64)
    )
    union = operators.kunion(left_bat, right_bat)
    assert set(union.head.tolist()) == set(left_bat.head.tolist()) | set(right_bat.head.tolist())
    difference = operators.kdifference(union, right_bat)
    assert set(difference.head.tolist()) == set(left_bat.head.tolist()) - set(right_bat.head.tolist())


@settings(max_examples=60, deadline=None)
@given(values=st.lists(st.integers(0, 10_000), min_size=1, max_size=100))
def test_tuple_reconstruction_round_trips(values):
    column = BAT(np.array(values, dtype=np.int64))
    candidates = operators.uselect(column, 0, 10_001)
    marked = operators.mark_tail(candidates, 0)
    positions = marked.reverse()
    rebuilt = operators.join(positions, column)
    assert rebuilt.tail.tolist() == values


@settings(max_examples=40, deadline=None)
@given(
    accesses=st.lists(
        st.tuples(st.integers(0, 15), st.integers(1, 64), st.booleans()), min_size=1, max_size=120
    ),
    capacity_kb=st.integers(min_value=1, max_value=64),
)
def test_buffer_pool_accounting_is_consistent(accesses, capacity_kb):
    pool = BufferPool(capacity_kb * 1024)
    for key, size_kb, dirty in accesses:
        pool.access(f"page-{key}", size_kb * 1024, dirty=dirty)
        # Unless a single page exceeds the capacity, usage stays within bounds.
        if pool.resident_pages > 1:
            assert pool.used_bytes <= pool.capacity_bytes or pool.resident_pages == 1
    stats = pool.stats
    assert stats.page_hits + stats.page_faults == len(accesses)
    assert 0.0 <= stats.hit_ratio <= 1.0


@settings(max_examples=30, deadline=None)
@given(
    n_queries=st.integers(min_value=1, max_value=100),
    selectivity=st.floats(min_value=0.001, max_value=0.5, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**16),
    kind=st.sampled_from(["uniform", "zipf"]),
)
def test_generated_workloads_respect_domain_and_selectivity(n_queries, selectivity, seed, kind):
    domain = (0.0, 1_000_000.0)
    generator = uniform_workload if kind == "uniform" else zipf_workload
    workload = generator(n_queries, domain, selectivity, seed=seed)
    assert len(workload) == n_queries
    expected_width = (domain[1] - domain[0]) * selectivity
    for query in workload:
        assert domain[0] <= query.low <= query.high <= domain[1]
        assert query.width <= expected_width * 1.0001
