"""Concurrent snapshot reads must answer exactly like the serial engine.

The contract under test: ``execute_wave(..., readers=N)`` fans bound range
selects across reader threads against pinned, immutable index snapshots
while adaptation (splits, materializations, budget evictions) and knob
changes keep running on the owner thread between waves.  Whatever the
interleaving, every member's *row set* must equal the fully serialized
run's — the batched and snapshot paths may order rows differently (value
order vs load order), so results are compared as sorted row sets.

Also pinned down here, at the strategy level: an already-pinned snapshot
keeps serving the layout it was taken under after the index is swapped; a
released snapshot is actually collected (no reader-side leak); and a
replication cover snapshot stays readable after budget eviction ``free()``s
the live nodes it froze.
"""

from __future__ import annotations

import gc
import weakref

import numpy as np
import pytest

from repro.engine.database import Database
from repro.util.units import KB

ROWS = 20_000
DOMAIN = 1_000_000.0
SQL = "select v, w from t where v >= ? and v < ?"


def _build(strategy: str) -> tuple[Database, np.ndarray]:
    rng = np.random.default_rng(17)
    values = rng.uniform(0.0, DOMAIN, ROWS)
    payload = rng.uniform(0.0, 1.0, ROWS)
    database = Database()
    database.create_table("t", {"v": "float64", "w": "float64"})
    database.bulk_load("t", {"v": values, "w": payload})
    options = {}
    if strategy == "replication":
        # A budget tight enough that eviction runs during the workload.
        options["storage_budget"] = float(values.nbytes) * 1.5
    database.enable_adaptive(
        "t", "v", strategy=strategy, model="apm", m_min=2 * KB, m_max=8 * KB,
        seed=5, **options,
    )
    return database, values


def _bounds(count: int, seed: int) -> list[tuple[float, float]]:
    rng = np.random.default_rng(seed)
    lows = rng.uniform(0.0, DOMAIN * 0.95, count)
    spans = rng.uniform(DOMAIN * 0.01, DOMAIN * 0.05, count)
    return [(float(low), float(low + span)) for low, span in zip(lows, spans)]


def _sorted_rows(result) -> tuple[np.ndarray, np.ndarray]:
    order = np.lexsort((result.columns["w"], result.columns["v"]))
    return result.columns["v"][order], result.columns["w"][order]


def _run_waves(database, bounds, *, readers, wave=16, knob_pulse=None):
    prepared = database.prepare_statement(SQL)
    results = []
    for wave_index, start in enumerate(range(0, len(bounds), wave)):
        requests = [
            (prepared, prepared.binding.bind(pair))
            for pair in bounds[start : start + wave]
        ]
        results.extend(database.execute_wave(requests, readers=readers))
        if knob_pulse is not None:
            knob_pulse(database, wave_index)
    return results


@pytest.mark.parametrize("strategy", ["segmentation", "replication"])
def test_concurrent_readers_are_permutation_equal_to_serial(strategy):
    bounds = _bounds(192, seed=23)
    serial_db, _ = _build(strategy)
    serial = _run_waves(serial_db, bounds, readers=1)

    def pulse(database: Database, wave_index: int) -> None:
        # Mid-stream retuning on the owner thread, like the online controller:
        # layout knobs wiggle while reader threads ran the previous wave.
        if strategy == "segmentation":
            database.set_knobs({"apm_m_max": (8 if wave_index % 2 else 6) * KB})
        else:
            knobs = database.knob_registry()
            spec = knobs.spec("replication_storage_budget")
            database.set_knobs({
                "replication_storage_budget": spec.low if wave_index % 2 else spec.high,
                "read_workers": 2 + wave_index % 3,
            })

    concurrent_db, _ = _build(strategy)
    concurrent = _run_waves(concurrent_db, bounds, readers=4, knob_pulse=pulse)

    assert len(serial) == len(concurrent) == len(bounds)
    for index, (left, right) in enumerate(zip(serial, concurrent)):
        assert not isinstance(left, BaseException), left
        assert not isinstance(right, BaseException), right
        left_v, left_w = _sorted_rows(left)
        right_v, right_w = _sorted_rows(right)
        np.testing.assert_array_equal(left_v, right_v, err_msg=f"member {index} values")
        np.testing.assert_array_equal(left_w, right_w, err_msg=f"member {index} payload")
    # The adapted-under-concurrency structure is still sound.
    concurrent_db.adaptive_handle("t", "v").adaptive.check_invariants()


@pytest.mark.parametrize("strategy", ["segmentation", "replication"])
def test_snapshot_reads_interleaved_with_owner_adaptation(strategy):
    """Strategy-level check: readonly answers stay exact while select() adapts."""
    database, values = _build(strategy)
    adaptive = database.adaptive_handle("t", "v").adaptive
    for low, high in _bounds(120, seed=31):
        snap = adaptive.pin_snapshot()
        got = adaptive.select_readonly(low, high, snap)
        expected = np.sort(values[(values >= low) & (values < high)])
        np.testing.assert_array_equal(np.sort(np.asarray(got.values)), expected)
        adaptive.select(low, high)  # owner-side adaptation between reads
    adaptive.absorb_reads()
    adaptive.check_invariants()


def test_pinned_segmentation_snapshot_serves_old_layout_after_swap():
    database, values = _build("segmentation")
    adaptive = database.adaptive_handle("t", "v").adaptive
    pinned = adaptive.pin_snapshot()
    generation = pinned.generation
    for low, high in _bounds(60, seed=3):
        adaptive.select(low, high)
    assert adaptive.meta_index.generation > generation, "workload did not adapt"
    assert pinned.generation == generation  # the pin never moved
    low, high = 100_000.0, 140_000.0
    stale_read = adaptive.select_readonly(low, high, pinned)
    expected = np.sort(values[(values >= low) & (values < high)])
    np.testing.assert_array_equal(np.sort(np.asarray(stale_read.values)), expected)
    adaptive.absorb_reads()


def test_released_snapshots_are_collected():
    """Old snapshots must not accumulate once readers release them."""
    database, _ = _build("segmentation")
    segmentation = database.adaptive_handle("t", "v").adaptive
    snap = segmentation.pin_snapshot()
    seg_ref = weakref.ref(snap)
    for low, high in _bounds(60, seed=3):
        segmentation.select(low, high)
    assert segmentation.meta_index.generation > snap.generation
    del snap
    gc.collect()
    assert seg_ref() is None, "superseded segmentation snapshot leaked"

    database, _ = _build("replication")
    replication = database.adaptive_handle("t", "v").adaptive
    snap = replication.pin_snapshot()
    repl_ref = weakref.ref(snap)
    for low, high in _bounds(60, seed=3):
        replication.select(low, high)
    assert replication.pin_snapshot().generation > snap.generation
    del snap
    gc.collect()
    assert repl_ref() is None, "superseded replication cover snapshot leaked"


def test_replication_snapshot_survives_budget_eviction_free():
    """A pinned cover snapshot stays readable after ``free()`` nulls live nodes."""
    database, values = _build("replication")
    adaptive = database.adaptive_handle("t", "v").adaptive
    # Materialize replicas in one region, pin, then hammer another region so
    # budget enforcement evicts (frees) the replicas the snapshot froze.
    rng = np.random.default_rng(11)
    for _ in range(40):
        low = float(rng.uniform(0.0, DOMAIN * 0.25))
        adaptive.select(low, low + DOMAIN * 0.03)
    pinned = adaptive.pin_snapshot()
    for _ in range(80):
        low = float(rng.uniform(DOMAIN * 0.6, DOMAIN * 0.9))
        adaptive.select(low, low + DOMAIN * 0.03)
    dropped = sum(stats.segments_dropped for stats in adaptive.history)
    assert dropped > 0, "workload failed to trigger eviction; tighten the budget"
    low, high = DOMAIN * 0.05, DOMAIN * 0.15
    stale_read = adaptive.select_readonly(low, high, pinned)
    expected = np.sort(values[(values >= low) & (values < high)])
    np.testing.assert_array_equal(np.sort(np.asarray(stale_read.values)), expected)
    adaptive.absorb_reads()
    adaptive.check_invariants()
