"""Property-based tests (hypothesis) for the core invariants.

The central correctness claims of the reproduction:

* whatever the workload, an adaptive column answers every range query exactly
  like a brute-force scan of the original data;
* adaptive segmentation always keeps a gap-free partition of the domain that
  conserves the original multiset of (oid, value) pairs;
* adaptive replication keeps a structurally valid replica tree in which every
  query range is coverable by materialized segments;
* the two segmentation models only ever propose cuts strictly inside the
  candidate segment.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.models import AdaptivePageModel, GaussianDice
from repro.core.ranges import ValueRange
from repro.core.replication import ReplicatedColumn
from repro.core.segment import Segment
from repro.core.segmentation import SegmentedColumn

DOMAIN = (0.0, 10_000.0)

#: A compact strategy for query streams over the test domain.
queries_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=9_999.0, allow_nan=False),
        st.floats(min_value=1.0, max_value=4_000.0, allow_nan=False),
    ),
    min_size=1,
    max_size=25,
)

columns_strategy = st.integers(min_value=64, max_value=1500)

models_strategy = st.sampled_from(["apm", "gd"])


def _make_column(n_values: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(int(DOMAIN[0]), int(DOMAIN[1]), size=n_values).astype(np.int32)


def _make_model(name: str, seed: int):
    if name == "apm":
        return AdaptivePageModel(m_min=128, m_max=512)
    return GaussianDice(seed=seed)


def _brute(values: np.ndarray, low: float, high: float) -> int:
    return int(((values >= low) & (values < high)).sum())


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(n_values=columns_strategy, queries=queries_strategy, model_name=models_strategy,
       seed=st.integers(min_value=0, max_value=2**16))
def test_segmentation_matches_brute_force_and_keeps_invariants(n_values, queries, model_name, seed):
    values = _make_column(n_values, seed)
    column = SegmentedColumn(values, model=_make_model(model_name, seed), domain=DOMAIN)
    for start, width in queries:
        low, high = start, min(start + width, DOMAIN[1])
        assert column.select(low, high).count == _brute(values, low, high)
    column.check_invariants()
    total = sum(int(segment.count) for segment in column.segments)
    assert total == values.size


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(n_values=columns_strategy, queries=queries_strategy, model_name=models_strategy,
       seed=st.integers(min_value=0, max_value=2**16))
def test_replication_matches_brute_force_and_keeps_tree_valid(n_values, queries, model_name, seed):
    values = _make_column(n_values, seed)
    column = ReplicatedColumn(values, model=_make_model(model_name, seed), domain=DOMAIN)
    for start, width in queries:
        low, high = start, min(start + width, DOMAIN[1])
        assert column.select(low, high).count == _brute(values, low, high)
    column.check_invariants()
    # Storage never drops below the information content of the column.
    assert column.storage_bytes >= 0
    # A whole-domain query still returns every value.
    assert column.select(*DOMAIN).count == values.size


@settings(max_examples=60, deadline=None)
@given(
    seg_low=st.floats(min_value=0, max_value=5_000, allow_nan=False),
    seg_width=st.floats(min_value=10, max_value=5_000, allow_nan=False),
    q_low=st.floats(min_value=-1_000, max_value=11_000, allow_nan=False),
    q_width=st.floats(min_value=0.1, max_value=6_000, allow_nan=False),
    count=st.integers(min_value=1, max_value=5_000),
    model_name=models_strategy,
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_models_only_cut_strictly_inside_the_segment(
    seg_low, seg_width, q_low, q_width, count, model_name, seed
):
    segment_range = ValueRange(seg_low, seg_low + seg_width)
    segment = Segment(segment_range, value_width=4, estimated_count=count)
    query = ValueRange(q_low, q_low + q_width)
    model = _make_model(model_name, seed)
    decision = model.decide(query, segment, total_bytes=4 * 100_000)
    for point in decision.points:
        assert segment_range.low < point < segment_range.high


@settings(max_examples=60, deadline=None)
@given(
    x=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    sigma=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
)
def test_gaussian_dice_probability_is_a_probability(x, sigma):
    probability = GaussianDice.decision_probability(x, sigma)
    assert 0.0 <= probability <= 1.0


@settings(max_examples=40, deadline=None)
@given(
    points=st.lists(st.floats(min_value=-50, max_value=150, allow_nan=False), max_size=8),
    low=st.floats(min_value=0, max_value=50, allow_nan=False),
    width=st.floats(min_value=1, max_value=100, allow_nan=False),
)
def test_range_split_always_partitions(points, low, width):
    vrange = ValueRange(low, low + width)
    pieces = vrange.split_at(points)
    assert pieces[0].low == vrange.low
    assert pieces[-1].high == vrange.high
    for first, second in zip(pieces, pieces[1:]):
        assert first.high == second.low
    assert sum(piece.width for piece in pieces) == pytest.approx(vrange.width, rel=1e-9, abs=1e-9)
