"""Property tests: CompiledPlan and Interpreter.run are semantically identical.

Satellite of the compiled-fast-path PR: the slot-based executor must produce
the same final variable environments and the same per-query ``QueryStats`` as
the tree-walking interpreter — including across the segment optimizer's
barrier/redo/exit iterator rewrites, where the control flow actually loops.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.accounting import QueryStats
from repro.engine.database import Database
from repro.engine.execution import ExecutionContext
from repro.mal.builder import ProgramBuilder
from repro.mal.compiled import compile_program
from repro.mal.interpreter import Interpreter
from repro.mal.modules import ModuleRegistry
from repro.mal.program import Var
from repro.sql.parser import parse
from repro.storage.bat import BAT
from repro.util.units import KB

#: QueryStats fields compared across executors (wall-clock timings excluded).
_STATS_FIELDS = [
    field for field in QueryStats.__dataclass_fields__ if not field.endswith("_seconds")
]


# ---------------------------------------------------------------------------
# Synthetic barrier programs: arbitrary item streams through a redo loop
# ---------------------------------------------------------------------------


def _loop_registry(items: list[int]) -> ModuleRegistry:
    registry = ModuleRegistry()
    state = {"position": 0}
    collected: list[int] = []

    def new_iterator(ctx, *args):
        state["position"] = 0
        return advance(ctx)

    def advance(ctx, *args):
        if state["position"] >= len(items):
            return None
        item = items[state["position"]]
        state["position"] += 1
        return item

    registry.register("iter", "new", new_iterator)
    registry.register("iter", "next", advance)
    registry.register("calc", "add", lambda ctx, a, b: a + b)
    registry.register("iter", "collect", lambda ctx, value: collected.append(value))
    registry.register("iter", "sink", lambda ctx: list(collected))
    return registry


def _loop_program(offset: int):
    builder = ProgramBuilder("loop", parameters=("A0",))
    barrier = builder.barrier("iter", "new", target="item")
    builder.call("calc", "add", Var("item"), Var("A0"), target="shifted")
    builder.effect("iter", "collect", Var("shifted"))
    builder.redo(barrier, "iter", "next")
    builder.exit(barrier)
    builder.call("iter", "sink", target="all")
    builder.call("calc", "add", Var("A0"), builder.const(offset), target="tail_value")
    return builder.build()


class _PlainContext:
    variables: dict = {}


@given(
    items=st.lists(st.integers(-1000, 1000), max_size=12),
    offset=st.integers(-5, 5),
    argument=st.integers(-100, 100),
)
@settings(max_examples=60, deadline=None)
def test_barrier_loop_environments_match(items, offset, argument):
    program = _loop_program(offset)
    interpreted = Interpreter(_loop_registry(items)).run(
        program, _PlainContext(), {"A0": argument}
    )
    compiled = compile_program(program, _loop_registry(items)).run(
        _PlainContext(), {"A0": argument}
    )
    assert interpreted == compiled


# ---------------------------------------------------------------------------
# Engine plans: the segment optimizer's iterator rewrite, end to end
# ---------------------------------------------------------------------------

_N_ROWS = 4_000


def _build_database() -> Database:
    rng = np.random.default_rng(23)
    db = Database()
    db.create_table("p", {"objid": "int64", "ra": "float64"})
    db.bulk_load(
        "p",
        {
            "objid": np.arange(_N_ROWS, dtype=np.int64),
            "ra": rng.uniform(0.0, 360.0, _N_ROWS),
        },
    )
    db.enable_adaptive("p", "ra", strategy="segmentation", model="apm",
                       m_min=1 * KB, m_max=4 * KB)
    return db


def _normalize(value):
    """A comparable representation of a MAL environment value."""
    if isinstance(value, BAT):
        return ("BAT", value.head.tolist(), value.tail.tolist())
    if isinstance(value, (list, tuple)):
        return tuple(_normalize(item) for item in value)
    if hasattr(value, "qualified_name"):  # AdaptiveColumnHandle
        return ("handle", value.qualified_name)
    return value


def _stats_tuple(stats: QueryStats) -> tuple:
    return tuple(getattr(stats, field) for field in _STATS_FIELDS)


# Lows start at 1.0: both executors inherit the engine's (pre-existing)
# rejection of ranges entirely below the data domain, which is not the
# property under test here.
queries = st.lists(
    st.tuples(
        st.floats(1.0, 350.0, allow_nan=False, allow_infinity=False),
        st.floats(0.01, 30.0, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=5,
)


@given(queries=queries)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_engine_iterator_rewrites_match_interpreter(queries):
    """Same env and same QueryStats, query by query, on two identical databases."""
    interpreted_db = _build_database()
    compiled_db = _build_database()
    for low, width in queries:
        sql = f"SELECT objid FROM p WHERE ra BETWEEN {low!r} AND {low + width!r}"

        plan_a = interpreted_db.optimizer.optimize(
            interpreted_db.compiler.compile(parse(sql))
        )
        context_a = ExecutionContext(catalog=interpreted_db.catalog)
        env_a = interpreted_db.interpreter.run(plan_a, context_a)

        plan_b = compiled_db.optimizer.optimize(compiled_db.compiler.compile(parse(sql)))
        context_b = ExecutionContext(catalog=compiled_db.catalog)
        env_b = compile_program(plan_b, compiled_db.registry).run(context_b)

        assert set(env_a) == set(env_b)
        for name in env_a:
            assert _normalize(env_a[name]) == _normalize(env_b[name]), name
        assert context_a.exported_columns().keys() == context_b.exported_columns().keys()
        for name, column in context_a.exported_columns().items():
            assert np.array_equal(column, context_b.exported_columns()[name])

    history_a = interpreted_db.adaptive_handle("p", "ra").adaptive.history
    history_b = compiled_db.adaptive_handle("p", "ra").adaptive.history
    assert len(history_a) == len(history_b) == len(queries)
    for stats_a, stats_b in zip(history_a, history_b):
        assert _stats_tuple(stats_a) == _stats_tuple(stats_b)


def test_database_execute_matches_interpreter_results():
    """The full execute() fast path answers exactly like the interpreter."""
    fast_db = _build_database()
    slow_db = _build_database()
    rng = np.random.default_rng(5)
    for _ in range(25):
        low = float(rng.uniform(0.0, 350.0))
        sql = f"SELECT objid FROM p WHERE ra BETWEEN {low!r} AND {low + 4.0!r}"

        fast = fast_db.execute(sql)

        plan = slow_db.optimizer.optimize(slow_db.compiler.compile(parse(sql)))
        context = ExecutionContext(catalog=slow_db.catalog)
        slow_db.interpreter.run(plan, context)
        expected = context.exported_columns()

        assert fast.column_names == list(expected)
        for name in expected:
            assert np.array_equal(np.sort(fast.column(name)), np.sort(expected[name]))

    history_fast = fast_db.adaptive_handle("p", "ra").adaptive.history
    history_slow = slow_db.adaptive_handle("p", "ra").adaptive.history
    assert len(history_fast) == len(history_slow)
    for stats_a, stats_b in zip(history_fast, history_slow):
        assert _stats_tuple(stats_a) == _stats_tuple(stats_b)


def test_compiled_plan_is_reusable_across_contexts():
    """One compiled plan, many executions: no state bleeds between runs."""
    db = _build_database()
    sql = "SELECT objid FROM p WHERE ra BETWEEN 100.0 AND 120.0"
    plan = compile_program(db.optimizer.optimize(db.compiler.compile(parse(sql))),
                           db.registry)
    first_context = ExecutionContext(catalog=db.catalog)
    plan.run(first_context)
    first = first_context.exported_columns()
    second_context = ExecutionContext(catalog=db.catalog)
    plan.run(second_context)
    second = second_context.exported_columns()
    for name in first:
        assert np.array_equal(first[name], second[name])


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
