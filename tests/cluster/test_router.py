"""Router: cloning, fan-out, cost-model routing, hot spreading, retune."""

import numpy as np
import pytest

from repro.cluster import Router, clone_database, merge_cache_stats, what_if_bytes
from repro.engine.database import Database
from repro.util.units import KB
from repro.workloads import changing_workload, multimodal_workload

SQL = "SELECT objid FROM p WHERE ra BETWEEN ? AND ?"
DOMAIN = (0.0, 360.0)
N_ROWS = 8_000


def build_database(seed=7, strategy="segmentation", **options):
    rng = np.random.default_rng(seed)
    database = Database()
    database.create_table("p", {"objid": "int64", "ra": "float64"})
    database.bulk_load(
        "p",
        {
            "objid": np.arange(N_ROWS, dtype=np.int64),
            "ra": rng.uniform(*DOMAIN, size=N_ROWS),
        },
    )
    database.enable_adaptive(
        "p", "ra", strategy=strategy, model="apm", m_min=1 * KB, m_max=4 * KB, **options
    )
    return database


def bounds_of(workload):
    return [(query.low, query.high) for query in workload.queries]


class TestCloneDatabase:
    def test_clone_answers_identically(self):
        source = build_database()
        clone = clone_database(source)
        for low, high in [(10.0, 20.0), (0.0, 360.0), (359.0, 359.5)]:
            got = clone.execute(f"SELECT objid FROM p WHERE ra BETWEEN {low} AND {high}")
            want = source.execute(f"SELECT objid FROM p WHERE ra BETWEEN {low} AND {high}")
            assert sorted(got.columns["objid"].tolist()) == sorted(
                want.columns["objid"].tolist()
            )

    def test_clone_does_not_share_layout(self):
        source = build_database()
        clone = clone_database(source)
        for _ in range(30):
            clone.execute("SELECT objid FROM p WHERE ra BETWEEN 100 AND 101")
        source_segments = source.adaptive_handle("p", "ra").adaptive.describe()[
            "segment_count"
        ]
        clone_segments = clone.adaptive_handle("p", "ra").adaptive.describe()[
            "segment_count"
        ]
        assert clone_segments > source_segments  # only the clone adapted

    def test_clone_copies_data(self):
        source = build_database()
        clone = clone_database(source)
        source_tail = source.catalog.column("p", "ra").bind(0).tail
        clone_tail = clone.catalog.column("p", "ra").bind(0).tail
        assert not np.shares_memory(source_tail, clone_tail)

    def test_model_instance_is_rejected(self):
        from repro.core.models import AdaptivePageModel

        source = build_database()
        source.enable_adaptive(
            "p", "objid", strategy="segmentation",
            model=AdaptivePageModel(1 * KB, 4 * KB),
        )
        with pytest.raises(ValueError, match="model instance"):
            clone_database(source)

    def test_pending_deltas_are_rejected(self):
        source = build_database()
        source.insert("p", {"objid": [N_ROWS], "ra": [1.0]})
        with pytest.raises(ValueError, match="deltas"):
            clone_database(source)


class TestRouterSurface:
    def test_fan_out_ddl_reaches_every_replica(self):
        with Router(Database(), 3) as router:
            router.create_table("t", {"x": "float64"})
            router.bulk_load("t", {"x": np.array([1.0, 2.0, 3.0])})
            router.enable_adaptive("t", "x", strategy="segmentation")
            for replica in router.replicas:
                assert replica.database.table_names() == ["t"]
                assert replica.database.bpm.is_managed("t", "x")
            router.disable_adaptive("t", "x")
            for replica in router.replicas:
                assert not replica.database.bpm.is_managed("t", "x")

    def test_replicas_do_not_share_loaded_arrays(self):
        with Router(Database(), 2) as router:
            router.create_table("t", {"x": "float64"})
            router.bulk_load("t", {"x": np.array([1.0, 2.0, 3.0])})
            first = router.replicas[0].database.catalog.column("t", "x").bind(0).tail
            second = router.replicas[1].database.catalog.column("t", "x").bind(0).tail
            assert not np.shares_memory(first, second)

    def test_routed_execution_answers_correctly(self):
        database = build_database()
        with Router(database, 2, seed=0) as router:
            prepared = router.prepare_statement(SQL)
            serial = build_database()
            serial_prepared = serial.prepare_statement(SQL)
            for low, high in [(5.0, 15.0), (200.0, 220.0), (5.0, 15.0), (0.0, 360.0)]:
                got = router.execute_prepared(prepared, (low, high))
                want = serial.execute_prepared(serial_prepared, (low, high))
                assert sorted(got.columns["objid"].tolist()) == sorted(
                    want.columns["objid"].tolist()
                )

    def test_single_replica_router_works(self):
        with Router(build_database(), 1) as router:
            prepared = router.prepare_statement(SQL)
            result = router.execute_prepared(prepared, (10.0, 20.0))
            assert result.row_count >= 0
            assert router.router_stats()["routing"]["routed"] == 1


class TestRouting:
    def run_workload(self, router, prepared, pairs):
        for low, high in pairs:
            router.execute_prepared(prepared, (low, high))

    def test_clusters_stick_to_their_replicas_after_retune(self):
        # hot_query_threshold is raised above 1/n_modes: two equal modes sit
        # at ~50% share each, which would legitimately trip the 0.5 default.
        database = build_database()
        with Router(database, 2, hot_query_threshold=0.9, seed=0) as router:
            prepared = router.prepare_statement(SQL)
            workload = multimodal_workload(120, DOMAIN, 0.005, n_modes=2, seed=4)
            self.run_workload(router, prepared, bounds_of(workload))
            report = router.retune()
            assert report["retuned"]
            # After retune, queries of one mode all route to one replica.
            mode_lows = workload.metadata["mode_lows"]
            targets = []
            for mode_low in mode_lows:
                routed = {
                    router.route(prepared, (mode_low + 0.05, mode_low + 0.2))
                    for _ in range(5)
                }
                assert len(routed) == 1
                targets.append(routed.pop())
            assert sorted(targets) == [0, 1]  # modes split across replicas

    def test_hot_cluster_spreads_across_all_replicas(self):
        database = build_database()
        with Router(
            database, 3, hot_query_threshold=0.4, share_window=16, seed=0
        ) as router:
            prepared = router.prepare_statement(SQL)
            workload = multimodal_workload(90, DOMAIN, 0.005, n_modes=3, seed=8)
            self.run_workload(router, prepared, bounds_of(workload))
            router.retune()
            # Hammer one mode until its share exceeds the threshold: routing
            # must fall back to round-robin over every replica.
            mode_low = workload.metadata["mode_lows"][0]
            routed = set()
            for _ in range(60):
                routed.add(router.route(prepared, (mode_low + 0.05, mode_low + 0.2)))
            assert routed == {0, 1, 2}
            assert router.router_stats()["routing"]["hot_routes"] > 0

    def test_observed_cost_drives_best_fit(self):
        database = build_database()
        with Router(database, 2, hot_query_threshold=0.9, seed=0) as router:
            prepared = router.prepare_statement(SQL)
            workload = multimodal_workload(80, DOMAIN, 0.005, n_modes=2, seed=3)
            self.run_workload(router, prepared, bounds_of(workload))
            router.retune()
            with router._lock:
                some_cluster = next(iter(router._preferred))
                # Pretend replica 1 got drastically faster for this cluster.
                router._cost[some_cluster] = [1.0, 1e-9]
            mode_lows = workload.metadata["mode_lows"]
            routed = {
                router.route(prepared, (low + 0.05, low + 0.2))
                for low in mode_lows
                for _ in range(3)
            }
            assert 1 in routed


class TestRetune:
    def test_retune_without_history_is_a_noop(self):
        with Router(build_database(), 2) as router:
            report = router.retune()
            assert report["retuned"] is False

    def test_retune_lowers_modeled_cost_on_shifting_workload(self):
        # The Fig 11–16 shape: phases of locality (changing workload) over a
        # replication-strategy column.  Retune must strictly lower the
        # traffic-weighted what-if cost.
        database = build_database(strategy="replication", storage_budget=4_000 * KB)
        with Router(database, 2, n_clusters=4, seed=0) as router:
            prepared = router.prepare_statement(SQL)
            workload = changing_workload(160, DOMAIN, 0.005, n_phases=4, seed=6)
            for low, high in bounds_of(workload):
                router.execute_prepared(prepared, (low, high))
            report = router.retune()
            assert report["retuned"]
            assert report["improved"]
            assert report["final_cost_bytes"] < report["initial_cost_bytes"]
            trajectory = report["cost_trajectory_bytes"]
            assert len(trajectory) >= 2
            assert min(trajectory) == report["final_cost_bytes"]

    def test_retune_lowers_modeled_cost_with_segmentation(self):
        database = build_database(strategy="segmentation")
        with Router(database, 2, n_clusters=4, seed=0) as router:
            prepared = router.prepare_statement(SQL)
            workload = changing_workload(160, DOMAIN, 0.005, n_phases=4, seed=6)
            for low, high in bounds_of(workload):
                router.execute_prepared(prepared, (low, high))
            report = router.retune()
            assert report["retuned"] and report["improved"]

    def test_cooldown_refuses_back_to_back_retunes(self):
        with Router(build_database(), 2, n_clusters=4, seed=0) as router:
            prepared = router.prepare_statement(SQL)
            workload = changing_workload(120, DOMAIN, 0.005, n_phases=4, seed=6)
            for low, high in bounds_of(workload):
                router.execute_prepared(prepared, (low, high))
            assert router.retune()["retuned"]
            refused = router.retune()  # within the 2 s default cooldown
            assert refused["retuned"] is False
            assert refused["reason"] == "cooldown"
            assert refused["elapsed_s"] < refused["cooldown_s"]
            # force=True is the operator escape hatch.
            assert router.retune(force=True)["retuned"]

    def test_hysteresis_requires_fresh_routes(self):
        database = build_database()
        with Router(
            database, 2, n_clusters=4, seed=0,
            retune_cooldown_s=0.0, retune_min_new_routes=40,
        ) as router:
            prepared = router.prepare_statement(SQL)
            workload = changing_workload(120, DOMAIN, 0.005, n_phases=4, seed=6)
            for low, high in bounds_of(workload):
                router.execute_prepared(prepared, (low, high))
            assert router.retune()["retuned"]
            refused = router.retune()  # zero new routes since the last one
            assert refused["retuned"] is False
            assert refused["reason"] == "hysteresis"
            for low, high in bounds_of(workload)[:40]:
                router.execute_prepared(prepared, (low, high))
            assert router.retune()["retuned"]

    def test_retune_history_records_every_attempt(self):
        with Router(build_database(), 2, n_clusters=4, seed=0) as router:
            prepared = router.prepare_statement(SQL)
            workload = changing_workload(120, DOMAIN, 0.005, n_phases=4, seed=6)
            for low, high in bounds_of(workload):
                router.execute_prepared(prepared, (low, high))
            router.retune()
            router.retune()  # refused by cooldown
            stats = router.router_stats()
            history = stats["retune_history"]
            assert [entry["retuned"] for entry in history] == [True, False]
            assert "final_cost_bytes" in history[0]
            assert history[1]["reason"] == "cooldown"
            guard = stats["retune_guard"]
            assert guard["cooldown_s"] == 2.0
            assert guard["routed_since_last_retune"] == 0

    def test_invalid_cooldown_rejected(self):
        with pytest.raises(ValueError, match="retune_cooldown_s"):
            Router(build_database(), 1, retune_cooldown_s=-1.0)

    def test_retune_is_deterministic_for_fixed_seed(self):
        def run():
            database = build_database()
            with Router(database, 2, seed=0) as router:
                prepared = router.prepare_statement(SQL)
                workload = multimodal_workload(100, DOMAIN, 0.005, n_modes=2, seed=5)
                for low, high in bounds_of(workload):
                    router.execute_prepared(prepared, (low, high))
                return router.retune()["assignment"]

        assert run() == run()


class TestWhatIfBytes:
    def test_segmentation_counts_overlapping_segment_bytes(self):
        database = build_database()
        adaptive = database.adaptive_handle("p", "ra").adaptive
        full = what_if_bytes(adaptive, 0.0, 360.0)
        assert full == pytest.approx(adaptive.total_bytes)
        partial = what_if_bytes(adaptive, 10.0, 11.0)
        assert 0.0 < partial <= full

    def test_empty_range_costs_nothing(self):
        database = build_database()
        adaptive = database.adaptive_handle("p", "ra").adaptive
        assert what_if_bytes(adaptive, 50.0, 50.0) == 0.0

    def test_replication_cover_shrinks_after_specialization(self):
        database = build_database(strategy="replication", storage_budget=4_000 * KB)
        adaptive = database.adaptive_handle("p", "ra").adaptive
        before = what_if_bytes(adaptive, 100.0, 101.0)
        for _ in range(20):
            adaptive.select(100.0, 101.0)
        after = what_if_bytes(adaptive, 100.0, 101.0)
        assert after < before


class TestStatsMerge:
    def test_merge_cache_stats_sums_counters_and_recomputes_ratios(self):
        first = {
            "batch": {
                "waves": 2, "batched_queries": 10, "fallback_queries": 1,
                "wave_size": {"min": 3, "max": 7, "mean": 5.0},
                "wave_size_histogram": {"4-7": 2},
            },
            "levels": {
                "prepared": {"hits": 8, "misses": 2, "evictions": 0,
                             "entries": 2, "hit_ratio": 0.8},
            },
            "total": {"hits": 8, "misses": 2, "evictions": 0, "invalidations": 1,
                      "size": 2, "capacity": 128, "hit_ratio": 0.8, "generation": 3},
        }
        second = {
            "batch": {
                "waves": 1, "batched_queries": 2, "fallback_queries": 0,
                "wave_size": {"min": 2, "max": 2, "mean": 2.0},
                "wave_size_histogram": {"1-3": 1},
            },
            "levels": {
                "prepared": {"hits": 2, "misses": 8, "evictions": 1,
                             "entries": 3, "hit_ratio": 0.2},
            },
            "total": {"hits": 2, "misses": 8, "evictions": 1, "invalidations": 0,
                      "size": 3, "capacity": 128, "hit_ratio": 0.2, "generation": 3},
        }
        merged = merge_cache_stats([first, second])
        assert merged["total"]["hits"] == 10
        assert merged["total"]["misses"] == 10
        # Recomputed from merged counters — NOT the mean of 0.8 and 0.2
        # weighted equally by snapshot.
        assert merged["total"]["hit_ratio"] == pytest.approx(0.5)
        assert merged["total"]["capacity"] == 256
        assert merged["total"]["generation"] == 3
        assert merged["levels"]["prepared"]["hits"] == 10
        assert merged["levels"]["prepared"]["hit_ratio"] == pytest.approx(0.5)
        assert merged["batch"]["waves"] == 3
        assert merged["batch"]["wave_size"] == {"min": 2, "max": 7, "mean": 4.0}
        assert merged["batch"]["wave_size_histogram"] == {"4-7": 2, "1-3": 1}
        assert merged["replicas"] == [first, second]

    def test_merge_requires_at_least_one_snapshot(self):
        with pytest.raises(ValueError):
            merge_cache_stats([])

    def test_router_cache_stats_match_manual_merge(self):
        database = build_database()
        with Router(database, 2) as router:
            prepared = router.prepare_statement(SQL)
            for low in (10.0, 50.0, 90.0, 130.0):
                router.execute_prepared(prepared, (low, low + 5.0))
            merged = router.cache_stats()
            manual = merge_cache_stats(
                [replica.database.cache_stats() for replica in router.replicas]
            )
            assert merged["total"] == manual["total"]
            assert len(merged["replicas"]) == 2


class TestRouterStats:
    def test_router_stats_shape(self):
        database = build_database()
        with Router(database, 2, seed=0) as router:
            prepared = router.prepare_statement(SQL)
            workload = multimodal_workload(60, DOMAIN, 0.005, n_modes=2, seed=2)
            for low, high in bounds_of(workload):
                router.execute_prepared(prepared, (low, high))
            router.retune()
            stats = router.router_stats()
            assert len(stats["replicas"]) == 2
            for replica in stats["replicas"]:
                assert replica["queries_served"] > 0
                assert replica["qps"] > 0
                assert "p.ra" in replica["columns"]
                assert replica["columns"]["p.ra"]["segment_count"] >= 1
            assert stats["routing"]["routed"] == 60
            assert stats["retunes"] == 1
            assert stats["clusters"]["n_clusters"] == 2
            assert stats["last_retune"]["retuned"]
