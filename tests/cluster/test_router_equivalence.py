"""Property: routed execution across N diverged replicas == serial execution.

The router may send any query to any replica, each replica's adaptive layout
diverges from every other's (different segment boundaries, different
replica trees), waves regroup queries arbitrarily — and none of it may ever
change an answer.  Every query routed through a divergently-adapted fleet
must be permutation-equal to the same query run serially, one at a time, on
a fresh single engine built from the same data, with adaptation enabled on
both sides.

Also pins the Fig 5–7 accounting fixture by content hash: the scale-out
subsystem must not perturb the simulation baselines it rides above.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Router
from repro.engine.database import Database
from repro.util.units import KB

SQL = "SELECT objid FROM p WHERE ra BETWEEN ? AND ?"
N_ROWS = 1_500
DOMAIN_HIGH = 360.0

seeds = st.integers(min_value=0, max_value=2**16)
replica_counts = st.integers(min_value=2, max_value=4)
query_counts = st.integers(min_value=4, max_value=24)
strategies = st.sampled_from(["segmentation", "replication"])


def build_database(seed: int, strategy: str) -> Database:
    rng = np.random.default_rng(seed)
    database = Database()
    database.create_table("p", {"objid": "int64", "ra": "float64"})
    database.bulk_load(
        "p",
        {
            "objid": np.arange(N_ROWS, dtype=np.int64),
            "ra": rng.uniform(0.0, DOMAIN_HIGH, size=N_ROWS),
        },
    )
    options = {"storage_budget": 64 * KB} if strategy == "replication" else {}
    database.enable_adaptive(
        "p", "ra", strategy=strategy, model="apm", m_min=1 * KB, m_max=4 * KB,
        **options,
    )
    return database


def make_queries(n: int, seed: int) -> list[tuple[float, float]]:
    """Wide, narrow, empty, duplicate and multi-modal ranges."""
    rng = np.random.default_rng(seed)
    queries: list[tuple[float, float]] = []
    for _ in range(n):
        kind = rng.integers(0, 5)
        low = float(rng.uniform(0.0, DOMAIN_HIGH))
        if kind == 0:  # wide
            queries.append((low, float(low + rng.uniform(0.0, DOMAIN_HIGH / 2))))
        elif kind == 1:  # narrow
            queries.append((low, float(low + rng.uniform(0.0, 2.0))))
        elif kind == 2:  # empty
            queries.append((low, low))
        elif kind == 3 and queries:  # duplicate an earlier range
            queries.append(queries[rng.integers(0, len(queries))])
        else:  # mode-confined (what the clustering feeds on)
            mode = float(rng.integers(0, 4)) * DOMAIN_HIGH / 4
            start = mode + float(rng.uniform(0.0, 5.0))
            queries.append((start, start + float(rng.uniform(0.1, 3.0))))
    return queries


def routed_answers(
    seed: int, n_replicas: int, strategy: str, queries: list[tuple[float, float]]
) -> list[list[int]]:
    """Answers through a retuning router, waves regrouped per replica."""
    database = build_database(seed, strategy)
    with Router(database, n_replicas, seed=0) as router:
        prepared = router.prepare_statement(SQL)
        answers: list[list[int]] = []
        half = len(queries) // 2
        for index, query in enumerate(queries):
            if index == half:
                # Mid-stream retune: layouts diverge while queries keep
                # flowing; answers must not notice.
                router.retune(sample_per_cluster=8, max_iterations=2)
            result = router.execute_prepared(prepared, query)
            answers.append(sorted(result.columns.get("objid", np.array([])).tolist()))
        return answers


def serial_answers(
    seed: int, strategy: str, queries: list[tuple[float, float]]
) -> list[list[int]]:
    """The same queries, one at a time, on a fresh identical single engine."""
    database = build_database(seed, strategy)
    prepared = database.prepare_statement(SQL)
    answers: list[list[int]] = []
    for low, high in queries:
        result = database.execute_prepared(prepared, (low, high))
        answers.append(sorted(np.asarray(result.columns["objid"]).tolist()))
    return answers


@given(
    seed=seeds, n_replicas=replica_counts, n_queries=query_counts, strategy=strategies
)
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_routed_execution_equals_serial_execution(
    seed, n_replicas, n_queries, strategy
):
    queries = make_queries(n_queries, seed + 1)
    got = routed_answers(seed, n_replicas, strategy, queries)
    expected = serial_answers(seed, strategy, queries)
    assert got == expected


def test_divergent_replicas_still_agree():
    """Deliberately diverge the fleet hard, then ask every replica directly."""
    database = build_database(99, "segmentation")
    with Router(database, 3, seed=0) as router:
        prepared = router.prepare_statement(SQL)
        # Specialize each replica on its own mode by replaying directly.
        for index, replica in enumerate(router.replicas):
            low = index * 120.0 + 5.0
            for _ in range(25):
                replica.run(
                    router.execute_wave_on,
                    index,
                    [(prepared, (low, low + 1.0))],
                )
        segment_counts = {
            replica.database.adaptive_handle("p", "ra").adaptive.describe()[
                "segment_count"
            ]
            for replica in router.replicas
        }
        assert len(segment_counts) > 1  # layouts genuinely diverged
        for low, high in [(10.0, 50.0), (100.0, 250.0), (0.0, 360.0)]:
            wave = [(prepared, (low, high))]
            answers = {
                tuple(
                    sorted(
                        replica.run(router.execute_wave_on, replica.index, wave)[0]
                        .columns["objid"]
                        .tolist()
                    )
                )
                for replica in router.replicas
            }
            assert len(answers) == 1  # every layout gives the same answer


def test_fig5_7_fixture_is_untouched():
    """The committed Fig 5–7 accounting fixture must survive this subsystem."""
    fixture = (
        Path(__file__).resolve().parent.parent / "data" / "fig5_7_accounting_fixture.json"
    )
    digest = hashlib.sha256(fixture.read_bytes()).hexdigest()
    assert digest == "9989a99ee8f25d5c5e7017f208316d705b5df4c9889cedf8f1c16cb61ec8c91b"
