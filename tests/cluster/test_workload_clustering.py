"""Workload clustering: seeded numpy k-means over (center, width) features."""

import numpy as np
import pytest

from repro.cluster.workload_clustering import (
    WorkloadClustering,
    cluster_workload,
    kmeans,
    query_features,
)
from repro.workloads import multimodal_workload

DOMAIN = (0.0, 360.0)


def modes_workload(n=200, n_modes=4, seed=11):
    workload = multimodal_workload(
        n, DOMAIN, selectivity=0.005, n_modes=n_modes, seed=seed
    )
    lows = np.array([q.low for q in workload.queries])
    highs = np.array([q.high for q in workload.queries])
    return workload, lows, highs


class TestQueryFeatures:
    def test_normalized_to_unit_square(self):
        features = query_features(
            np.array([0.0, 100.0, 359.0]),
            np.array([10.0, 150.0, 360.0]),
            domain_low=0.0,
            domain_high=360.0,
        )
        assert features.shape == (3, 2)
        assert (features >= 0.0).all() and (features <= 1.0).all()

    def test_center_and_width_semantics(self):
        features = query_features(
            np.array([90.0]), np.array([270.0]), domain_low=0.0, domain_high=360.0
        )
        assert features[0, 0] == pytest.approx(0.5)  # center at mid-domain
        assert features[0, 1] == pytest.approx(0.5)  # half-domain width

    def test_infinite_bounds_clip_to_domain(self):
        features = query_features(
            np.array([-np.inf]), np.array([np.inf]), domain_low=0.0, domain_high=360.0
        )
        assert features[0, 0] == pytest.approx(0.5)
        assert features[0, 1] == pytest.approx(1.0)

    def test_inverted_bounds_clamp_to_empty(self):
        features = query_features(
            np.array([200.0]), np.array([100.0]), domain_low=0.0, domain_high=360.0
        )
        assert features[0, 1] == 0.0


class TestKmeans:
    def test_deterministic_for_fixed_seed(self):
        _, lows, highs = modes_workload(seed=3)
        features = query_features(lows, highs, domain_low=0.0, domain_high=360.0)
        first = kmeans(features, 4, seed=42)
        second = kmeans(features, 4, seed=42)
        assert np.array_equal(first[1], second[1])
        assert np.allclose(first[0], second[0])

    def test_recovers_disjoint_modes(self):
        # 4 disjoint narrow modes must land in 4 distinct clusters, with
        # every query of a mode labelled identically.
        workload, lows, highs = modes_workload(n=200, n_modes=4, seed=5)
        clustering = cluster_workload(
            lows, highs, 4, domain_low=0.0, domain_high=360.0, seed=0
        )
        labels = clustering.labels
        mode_of_query = np.arange(200) % 4  # multimodal interleaves modes
        for mode in range(4):
            mode_labels = set(labels[mode_of_query == mode].tolist())
            assert len(mode_labels) == 1
        assert len({labels[mode] for mode in range(4)}) == 4

    def test_k_clamped_to_n_points(self):
        centroids, labels, _ = kmeans(np.array([[0.1, 0.1], [0.9, 0.1]]), 8, seed=0)
        assert centroids.shape[0] == 2
        assert sorted(set(labels.tolist())) == [0, 1]

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 2)), 2)

    def test_identical_points_single_cluster_behaviour(self):
        features = np.full((10, 2), 0.25)
        centroids, labels, inertia = kmeans(features, 3, seed=1)
        assert inertia == pytest.approx(0.0)
        assert len(labels) == 10


class TestWorkloadClustering:
    def test_assign_matches_assign_one(self):
        _, lows, highs = modes_workload(seed=9)
        clustering = cluster_workload(
            lows, highs, 4, domain_low=0.0, domain_high=360.0, seed=0
        )
        batch = clustering.assign(lows, highs)
        singles = [clustering.assign_one(low, high) for low, high in zip(lows, highs)]
        assert batch.tolist() == singles

    def test_assign_is_stable_on_training_data(self):
        _, lows, highs = modes_workload(seed=13)
        clustering = cluster_workload(
            lows, highs, 4, domain_low=0.0, domain_high=360.0, seed=0
        )
        assert clustering.assign(lows, highs).tolist() == clustering.labels.tolist()

    def test_sizes_cover_all_queries(self):
        _, lows, highs = modes_workload(n=120, seed=2)
        clustering = cluster_workload(
            lows, highs, 4, domain_low=0.0, domain_high=360.0, seed=0
        )
        assert int(clustering.sizes().sum()) == 120

    def test_describe_reports_domain_units(self):
        _, lows, highs = modes_workload(seed=21)
        clustering = cluster_workload(
            lows, highs, 4, domain_low=0.0, domain_high=360.0, seed=0
        )
        description = clustering.describe()
        assert description["n_clusters"] == 4
        for cluster in description["clusters"]:
            assert 0.0 <= cluster["center"] <= 360.0
            assert cluster["trained_on"] > 0

    def test_multimodal_workload_seed_is_deterministic(self):
        # The satellite contract: explicit seeds make partition assignments
        # reproducible in CI.
        first = multimodal_workload(50, DOMAIN, 0.01, seed=77)
        second = multimodal_workload(50, DOMAIN, 0.01, seed=77)
        assert [(q.low, q.high) for q in first.queries] == [
            (q.low, q.high) for q in second.queries
        ]
        assert first.metadata["mode_lows"] == second.metadata["mode_lows"]

    def test_multimodal_modes_are_disjoint(self):
        workload = multimodal_workload(80, DOMAIN, 0.005, n_modes=4, seed=1)
        mode_lows = workload.metadata["mode_lows"]
        band = (DOMAIN[1] - DOMAIN[0]) / 4
        for index, mode_low in enumerate(mode_lows):
            assert index * band <= mode_low < (index + 1) * band
