"""Fault-tolerant scale-out: health state machine, failover, rebuild.

The tentpole correctness gate lives here: under deterministically injected
crashes of up to N−1 replicas mid-stream, every client receives either a
correct answer or a clean ``TransientError``/``OperationalError``, the
completed answers are permutation-equal to a serial single-engine run, and
the fleet converges back to full health via background rebuilds.  Alongside
it: unit coverage for the :class:`ReplicaWorker` hard-timeout close (a
wedged replica must never hang shutdown) and the router's failure-detector
transitions.
"""

from __future__ import annotations

import asyncio
import hashlib
import threading
import time
from pathlib import Path

import numpy as np
import pytest

import repro.aio
from repro.api.exceptions import OperationalError
from repro.cluster import ReplicaHealth, ReplicaWorker, Router
from repro.engine.database import Database
from repro.fault import FaultInjector
from repro.server import ReproServer

SQL = "SELECT v FROM t WHERE v BETWEEN ? AND ?"
N_ROWS = 2_000


def build_database(n_rows: int = N_ROWS, seed: int = 11) -> Database:
    rng = np.random.default_rng(seed)
    database = Database()
    database.create_table("t", {"v": "float64"})
    database.bulk_load("t", {"v": rng.uniform(0.0, 1000.0, size=n_rows)})
    database.enable_adaptive("t", "v", strategy="segmentation")
    return database


def wave_of(router: Router, prepared, bounds) -> list:
    """Run one wave synchronously on its replica's worker."""
    index = router.route(prepared, bounds)
    return router.replicas[index].run(
        router.execute_wave_on, index, [(prepared, bounds)]
    )


class TestReplicaWorker:
    def test_submit_returns_a_future_with_the_result(self):
        worker = ReplicaWorker(0)
        assert worker.submit(lambda a, b: a + b, 2, 3).result(timeout=2) == 5
        assert worker.close()

    def test_exceptions_travel_through_the_future(self):
        worker = ReplicaWorker(0)
        future = worker.submit(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            future.result(timeout=2)
        assert worker.close()

    def test_close_is_idempotent_and_rejects_new_work(self):
        worker = ReplicaWorker(0)
        assert worker.close() and worker.close()
        with pytest.raises(RuntimeError, match="closed"):
            worker.submit(lambda: None)

    def test_wedged_worker_is_abandoned_within_the_timeout(self):
        # Satellite gate: a replica stuck mid-task (injected hang, runaway
        # kernel) must not hang interpreter shutdown.  close() gives up after
        # its hard timeout, flags the worker wedged, and returns.
        worker = ReplicaWorker(0)
        release = threading.Event()
        worker.submit(release.wait)
        started = time.perf_counter()
        assert worker.close(timeout=0.1) is False
        assert time.perf_counter() - started < 2.0
        assert worker.wedged
        assert worker.close(timeout=0.1) is False  # still wedged, still fast
        release.set()  # let the daemon thread exit cleanly


class TestHealthStateMachine:
    def test_failures_escalate_healthy_suspect_quarantined(self):
        router = Router(build_database(200), 2, quarantine_after=2)
        try:
            assert router.record_wave_failure(1, RuntimeError("x")) is ReplicaHealth.SUSPECT
            assert router.record_wave_failure(1, RuntimeError("y")) is ReplicaHealth.QUARANTINED
            health = router.router_stats()["health"]
            assert health["states"] == ["healthy", "quarantined"]
            assert health["quarantines"] == 1 and health["failovers"] == 1
        finally:
            router.close()

    def test_success_heals_a_suspect_but_never_a_quarantined_replica(self):
        router = Router(build_database(200), 2, quarantine_after=2)
        try:
            router.record_wave_failure(1, RuntimeError("x"))
            router.record_wave_success(1)
            assert router.replicas[1].health is ReplicaHealth.HEALTHY
            assert router.replicas[1].consecutive_failures == 0
            router.record_wave_failure(1, RuntimeError("x"))
            router.record_wave_failure(1, RuntimeError("y"))
            # A stale wave completing late on the abandoned worker must not
            # sneak the replica back into rotation around the rebuild.
            router.record_wave_success(1)
            assert router.replicas[1].health is ReplicaHealth.QUARANTINED
        finally:
            router.close()

    def test_timeout_quarantines_immediately(self):
        router = Router(build_database(200), 2, quarantine_after=5)
        try:
            assert router.record_wave_timeout(1) is ReplicaHealth.QUARANTINED
            assert router.router_stats()["health"]["timeouts"] == 1
        finally:
            router.close()

    def test_the_last_routable_replica_is_never_quarantined(self):
        router = Router(build_database(200), 2, quarantine_after=1)
        try:
            assert router.quarantine_replica(1)
            assert not router.quarantine_replica(0)  # graceful degradation floor
            assert router.replicas[0].health is ReplicaHealth.HEALTHY
            assert router.router_stats()["health"]["quarantine_vetoes"] == 1
        finally:
            router.close()

    def test_route_avoids_quarantined_replicas(self):
        router = Router(build_database(500), 3)
        try:
            prepared = router.prepare_statement(SQL)
            router.quarantine_replica(1)
            indices = {router.route(prepared, (10.0, 20.0)) for _ in range(12)}
            assert 1 not in indices and indices <= {0, 2}
            assert router.healthy_indices() == [0, 2]
        finally:
            router.close()

    def test_quarantine_fails_over_preferred_clusters(self):
        router = Router(build_database(500), 3, quarantine_after=1)
        try:
            prepared = router.prepare_statement(SQL)
            rng = np.random.default_rng(5)
            for _ in range(64):
                low = float(rng.uniform(0.0, 900.0))
                wave_of(router, prepared, (low, low + 50.0))
            router.retune(n_clusters=3)
            victim = next(iter(router.router_stats()["assignment"].values()))
            router.quarantine_replica(victim)
            assignment = router.router_stats()["assignment"]
            assert victim not in assignment.values()
            assert router.router_stats()["health"]["clusters_failed_over"] >= 1
        finally:
            router.close()


class TestRebuild:
    def test_rebuild_restores_a_quarantined_replica(self):
        router = Router(build_database(500), 2, quarantine_after=1)
        try:
            prepared = router.prepare_statement(SQL)
            expected = wave_of(router, prepared, (100.0, 200.0))[0].row_count
            router.quarantine_replica(1)
            report = router.rebuild_replica(1)
            assert report == {"rebuilt": True, "replica": 1, "donor": 0}
            assert router.replicas[1].health is ReplicaHealth.HEALTHY
            assert router.replicas[1].rebuilds == 1
            result = router.replicas[1].run(
                router.execute_wave_on, 1, [(prepared, (100.0, 200.0))]
            )[0]
            assert result.row_count == expected
            assert router.router_stats()["health"]["rebuilds"] == 1
        finally:
            router.close()

    def test_rebuild_refuses_a_replica_that_is_not_quarantined(self):
        router = Router(build_database(200), 2)
        try:
            report = router.rebuild_replica(1)
            assert report["rebuilt"] is False and "not quarantined" in report["reason"]
        finally:
            router.close()

    def test_rebuild_swaps_in_a_fresh_worker_for_a_wedged_one(self):
        router = Router(build_database(200), 2, quarantine_after=1)
        try:
            release = threading.Event()
            router.replicas[1].submit(release.wait)  # wedge the worker
            router.quarantine_replica(1)
            report = router.rebuild_replica(1)
            assert report["rebuilt"] is True
            # The new worker answers even though the old thread is stuck.
            assert router.replicas[1].run(lambda: 42) == 42
            release.set()
        finally:
            router.close()


class TestCrashStreamProperty:
    """The tentpole gate: N−1 crashes mid-stream, correct-or-transient."""

    N_REPLICAS = 4
    N_QUERIES = 48

    @staticmethod
    def query_bounds(seed: int = 23) -> list[tuple[float, float]]:
        rng = np.random.default_rng(seed)
        bounds = []
        for _ in range(TestCrashStreamProperty.N_QUERIES):
            low = float(rng.uniform(0.0, 900.0))
            bounds.append((low, low + float(rng.uniform(10.0, 80.0))))
        return bounds

    @staticmethod
    def serial_answers(bounds: list[tuple[float, float]]) -> dict[tuple, list[float]]:
        database = build_database()
        prepared = database.prepare_statement(SQL)
        answers = {}
        for pair in bounds:
            result = database.execute_prepared(prepared, pair)
            answers[pair] = sorted(result.columns["v"].tolist())
        return answers

    def test_crashes_of_up_to_three_replicas_keep_answers_correct(self):
        bounds = self.query_bounds()
        serial = self.serial_answers(bounds)

        injector = FaultInjector(seed=97)
        # Crash three of the four replicas at seeded points mid-stream; each
        # crash spec is finite, so the rebuilt replica serves cleanly after.
        for replica in (1, 2, 3):
            injector.schedule("wave.execute", at=1, action="crash", replica=replica)

        async def go():
            server = ReproServer(
                build_database(),
                port=0,
                replicas=self.N_REPLICAS,
                batch_window_us=500.0,
                max_retries=3,
                retry_backoff_s=0.005,
                injector=injector,
                router_knobs={"quarantine_after": 1},
            )
            async with server:
                connection = await repro.aio.connect(*server.address)
                statement = await connection.prepare(SQL)
                outcomes = await asyncio.gather(
                    *(statement.execute(pair) for pair in bounds),
                    return_exceptions=True,
                )
                # The fleet must converge back to full health (rebuilds are
                # background tasks kicked off by the admission layer).
                deadline = time.perf_counter() + 10.0
                while time.perf_counter() < deadline:
                    health = (await connection.admin.router_stats())["health"]
                    if all(state == "healthy" for state in health["states"]):
                        break
                    await asyncio.sleep(0.05)
                stats = await connection.admin.router_stats()
                await connection.close()
            return outcomes, stats

        outcomes, stats = asyncio.run(go())

        completed = 0
        for pair, outcome in zip(bounds, outcomes):
            if isinstance(outcome, BaseException):
                # The only acceptable failure is a clean transient/operational
                # error — never a wrong answer, never a hang.
                assert isinstance(outcome, OperationalError), outcome
            else:
                completed += 1
                assert sorted(outcome.columns["v"].tolist()) == serial[pair]
        assert completed >= self.N_QUERIES - 3  # retries absorb almost everything

        health = stats["health"]
        assert injector.fired("wave.execute") == 3
        assert health["quarantines"] >= 1
        assert health["rebuilds"] > 0
        assert all(state == "healthy" for state in health["states"])

    def test_fig5_7_fixture_is_untouched(self):
        """The paper-accounting fixture must survive the fault-tolerance layer."""
        fixture = (
            Path(__file__).resolve().parent.parent
            / "data"
            / "fig5_7_accounting_fixture.json"
        )
        digest = hashlib.sha256(fixture.read_bytes()).hexdigest()
        assert digest == (
            "9989a99ee8f25d5c5e7017f208316d705b5df4c9889cedf8f1c16cb61ec8c91b"
        )


class TestRouterClose:
    def test_close_with_a_wedged_replica_returns_promptly(self):
        router = Router(build_database(200), 2, join_timeout_s=0.1)
        release = threading.Event()
        router.replicas[1].submit(release.wait)
        started = time.perf_counter()
        assert router.close() is False
        assert time.perf_counter() - started < 2.0
        assert router.replicas[1].wedged and not router.replicas[0].wedged
        assert router.close() is False  # idempotent, still reports the wedge
        release.set()

    def test_clean_close_reports_true(self):
        router = Router(build_database(200), 2)
        assert router.close() is True
        assert router.close() is True
