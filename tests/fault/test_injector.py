"""The deterministic fault injector: counting, matching, actions, seeding."""

from __future__ import annotations

import time

import pytest

from repro.api.exceptions import OperationalError, TransientError
from repro.fault import (
    FaultInjector,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    specs_from_json,
)


class TestFaultSpec:
    def test_validates_fields(self):
        with pytest.raises(ValueError, match="action"):
            FaultSpec(site="s", action="explode")
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec(site="s", at=0)
        with pytest.raises(ValueError, match="count"):
            FaultSpec(site="s", count=0)
        with pytest.raises(ValueError, match="delay_s"):
            FaultSpec(site="s", delay_s=-1.0)

    def test_exhaustion_window(self):
        spec = FaultSpec(site="s", at=3, count=2)
        assert not spec.exhausted
        spec.seen = 3
        assert not spec.exhausted  # op 4 can still fire
        spec.seen = 4
        assert spec.exhausted


class TestFiring:
    def test_fires_exactly_at_the_scheduled_ordinal(self):
        injector = FaultInjector()
        injector.schedule("site", at=3, action="error")
        injector.fire("site")
        injector.fire("site")
        with pytest.raises(InjectedFault):
            injector.fire("site")
        assert injector.fire("site") is None  # the window has passed
        assert injector.fired("site") == 1
        assert injector.operations("site") == 4

    def test_count_fires_consecutive_operations(self):
        injector = FaultInjector()
        injector.schedule("site", at=2, action="crash", count=2)
        injector.fire("site")
        for _ in range(2):
            with pytest.raises(InjectedCrash):
                injector.fire("site")
        assert injector.fire("site") is None

    def test_match_narrows_to_context(self):
        injector = FaultInjector()
        injector.schedule("wave.execute", at=1, action="error", replica=1)
        assert injector.fire("wave.execute", replica=0) is None
        assert injector.fire("wave.execute", replica=2) is None
        with pytest.raises(InjectedFault):
            injector.fire("wave.execute", replica=1)
        # The spec's ordinal clock counts *matching* operations only.
        assert injector.specs[0].seen == 1

    def test_injected_faults_are_transient_operational_errors(self):
        # The whole point: injected failures traverse the production
        # retry/failover paths, which key on the TransientError taxonomy.
        assert issubclass(InjectedFault, TransientError)
        assert issubclass(InjectedCrash, InjectedFault)
        assert issubclass(TransientError, OperationalError)

    def test_hang_sleeps_then_reports(self):
        injector = FaultInjector()
        injector.schedule("site", at=1, action="hang", delay_s=0.05)
        started = time.perf_counter()
        assert injector.fire("site") == "hang"
        assert time.perf_counter() - started >= 0.05

    def test_drop_is_returned_to_the_caller(self):
        injector = FaultInjector()
        injector.schedule("client.send", at=1, action="drop")
        assert injector.fire("client.send") == "drop"

    def test_check_never_raises(self):
        injector = FaultInjector()
        injector.schedule("site", at=1, action="crash")
        assert injector.check("site") == "error"
        assert injector.check("site") is None

    def test_unarmed_sites_cost_nothing_but_a_counter(self):
        injector = FaultInjector()
        for _ in range(10):
            assert injector.fire("quiet") is None
        assert injector.operations("quiet") == 10
        assert injector.fired() == 0

    def test_log_records_firing_order_and_context(self):
        injector = FaultInjector()
        injector.schedule("a", at=1, action="drop")
        injector.schedule("b", at=1, action="drop")
        injector.fire("b", op="execute")
        injector.fire("a")
        assert [entry["site"] for entry in injector.log] == ["b", "a"]
        assert injector.log[0]["context"] == {"op": "execute"}


class TestDeterminism:
    def test_schedule_random_is_reproducible_from_the_seed(self):
        first = FaultInjector(seed=42)
        second = FaultInjector(seed=42)
        other = FaultInjector(seed=43)
        ordinals = lambda inj: [  # noqa: E731
            s.at for s in inj.schedule_random("s", n_faults=5, window=1000)
        ]
        assert ordinals(first) == ordinals(second)
        assert ordinals(first) != ordinals(other)

    def test_schedule_random_rejects_an_overfull_window(self):
        with pytest.raises(ValueError, match="window"):
            FaultInjector().schedule_random("s", n_faults=3, window=2)

    def test_from_spec_window_draws_the_ordinal_from_the_seed(self):
        spec = {
            "seed": 7,
            "faults": [{"site": "wave.execute", "window": 100, "action": "crash"}],
        }
        first = FaultInjector.from_spec(spec)
        second = FaultInjector.from_spec(spec)
        assert first.specs[0].at == second.specs[0].at
        assert 1 <= first.specs[0].at <= 100

    def test_specs_from_json_builds_the_armed_injector(self):
        injector = specs_from_json(
            '{"seed": 3, "faults": [{"site": "wave.execute", "at": 2, '
            '"action": "crash", "match": {"replica": 1}}]}'
        )
        assert injector.seed == 3
        spec = injector.specs[0]
        assert (spec.site, spec.at, spec.action) == ("wave.execute", 2, "crash")
        assert spec.match == {"replica": 1}
        description = injector.describe()
        assert description["seed"] == 3 and description["fired"] == 0
