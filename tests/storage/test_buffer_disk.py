"""Unit tests for the buffer pool and the disk cost model."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskModel
from repro.util.units import KB, MB


class TestBufferPool:
    def test_fault_then_hit(self):
        pool = BufferPool(10 * KB)
        faulted = pool.access("a", 4 * KB)
        assert faulted == 4 * KB
        assert pool.access("a", 4 * KB) == 0.0
        assert pool.stats.page_faults == 1
        assert pool.stats.page_hits == 1
        assert pool.stats.hit_ratio == pytest.approx(0.5)

    def test_lru_eviction(self):
        pool = BufferPool(10 * KB)
        pool.access("a", 4 * KB)
        pool.access("b", 4 * KB)
        pool.access("a", 4 * KB)  # refresh a; b becomes LRU
        pool.access("c", 4 * KB)  # evicts b
        assert pool.contains("a")
        assert not pool.contains("b")
        assert pool.contains("c")
        assert pool.stats.evictions == 1

    def test_dirty_eviction_writes_back(self):
        pool = BufferPool(8 * KB)
        pool.access("a", 4 * KB, dirty=True)
        pool.access("b", 4 * KB)
        pool.access("c", 4 * KB)  # evicts dirty a
        assert pool.stats.disk_writes_bytes == 4 * KB

    def test_dirty_pages_are_not_read_from_disk(self):
        pool = BufferPool(8 * KB)
        pool.access("fresh", 2 * KB, dirty=True)
        assert pool.stats.disk_reads_bytes == 0.0

    def test_oversized_page_is_never_cached(self):
        pool = BufferPool(1 * KB)
        pool.access("huge", 10 * KB)
        pool.access("huge", 10 * KB)
        assert not pool.contains("huge")
        assert pool.stats.page_faults == 2
        assert pool.stats.disk_reads_bytes == 20 * KB

    def test_invalidate(self):
        pool = BufferPool(10 * KB)
        pool.access("a", 4 * KB)
        pool.invalidate("a")
        assert not pool.contains("a")
        assert pool.used_bytes == 0.0

    def test_flush_writes_dirty_pages_once(self):
        pool = BufferPool(64 * KB)
        pool.access("a", 4 * KB, dirty=True)
        pool.access("b", 4 * KB)
        assert pool.flush() == 4 * KB
        assert pool.flush() == 0.0

    def test_invalid_capacity_and_size(self):
        with pytest.raises(ValueError):
            BufferPool(0)
        pool = BufferPool(1 * KB)
        with pytest.raises(ValueError):
            pool.access("a", -1)


class TestDiskModel:
    def test_disk_seconds_scale_with_bytes_and_seeks(self):
        model = DiskModel(bandwidth_bytes_per_s=100 * MB, seek_latency_s=0.01)
        one_seek = model.disk_seconds(100 * MB, 1)
        two_seeks = model.disk_seconds(100 * MB, 2)
        assert one_seek == pytest.approx(1.01)
        assert two_seeks == pytest.approx(1.02)

    def test_memory_faster_than_disk(self):
        model = DiskModel()
        assert model.memory_seconds(10 * MB) < model.disk_seconds(10 * MB)

    def test_query_seconds_combines_components(self):
        model = DiskModel()
        total = model.query_seconds(1 * MB, 1 * MB, 2 * MB, 0.0, disk_accesses=2)
        assert total == pytest.approx(
            model.memory_seconds(2 * MB) + model.disk_seconds(2 * MB, 2)
        )

    def test_negative_inputs_rejected(self):
        model = DiskModel()
        with pytest.raises(ValueError):
            model.disk_seconds(-1)
        with pytest.raises(ValueError):
            model.memory_seconds(-1)
