"""Unit tests for the BAT storage primitive."""

import numpy as np
import pytest

from repro.storage.bat import BAT


class TestConstruction:
    def test_void_head_is_dense(self):
        bat = BAT(np.array([10.0, 20.0, 30.0]), hseqbase=5)
        assert bat.is_void_head
        assert bat.head.tolist() == [5, 6, 7]
        assert bat.count == 3

    def test_explicit_head(self):
        bat = BAT.from_pairs(np.array([3, 1]), np.array([30, 10]))
        assert not bat.is_void_head
        assert bat.head.tolist() == [3, 1]

    def test_empty(self):
        bat = BAT.empty(np.float64)
        assert bat.count == 0
        assert bat.tail.dtype == np.float64

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            BAT(np.array([1, 2]), np.array([0]))

    def test_multidimensional_rejected(self):
        with pytest.raises(ValueError):
            BAT(np.zeros((2, 2)))

    def test_size_bytes(self):
        void = BAT(np.zeros(10, dtype=np.int32))
        explicit = BAT.from_pairs(np.arange(10), np.zeros(10, dtype=np.int32))
        assert void.size_bytes == 40
        assert explicit.size_bytes == 40 + 80  # tail + materialized int64 head


class TestOperations:
    def test_reverse_swaps_head_and_tail(self):
        bat = BAT.from_pairs(np.array([1, 2, 3]), np.array([10, 20, 30]))
        reversed_bat = bat.reverse()
        assert reversed_bat.head.tolist() == [10, 20, 30]
        assert reversed_bat.tail.tolist() == [1, 2, 3]

    def test_slice_preserves_void_oids(self):
        bat = BAT(np.array([10, 20, 30, 40]), hseqbase=100)
        piece = bat.slice(1, 3)
        assert piece.head.tolist() == [101, 102]
        assert piece.tail.tolist() == [20, 30]

    def test_slice_clamps_bounds(self):
        bat = BAT(np.array([1, 2, 3]))
        assert bat.slice(-5, 100).count == 3

    def test_take_oids_void_head(self):
        bat = BAT(np.array([10, 20, 30, 40]), hseqbase=0)
        taken = bat.take_oids(np.array([2, 0, 99]))
        assert taken.tail.tolist() == [30, 10]
        assert taken.head.tolist() == [2, 0]

    def test_take_oids_explicit_head(self):
        bat = BAT.from_pairs(np.array([5, 9, 7]), np.array([50, 90, 70]))
        taken = bat.take_oids(np.array([7, 5]))
        assert sorted(taken.tail.tolist()) == [50, 70]

    def test_append(self):
        first = BAT(np.array([1, 2]))
        second = BAT(np.array([3]), hseqbase=2)
        merged = first.append(second)
        assert merged.count == 3
        assert merged.head.tolist() == [0, 1, 2]

    def test_append_empty_keeps_contents(self):
        bat = BAT(np.array([1, 2]))
        merged = bat.append(BAT.empty(bat.tail.dtype))
        assert merged.count == 2

    def test_copy_is_independent(self):
        bat = BAT(np.array([1, 2, 3]))
        clone = bat.copy()
        clone.tail[0] = 99
        assert bat.tail[0] == 1
