"""Unit tests for stored columns, column stores and the catalog."""

import numpy as np
import pytest

from repro.storage.catalog import Catalog, TableSchema
from repro.storage.column import ColumnStore, StoredColumn


class TestStoredColumn:
    def test_bind_levels(self):
        column = StoredColumn("p", "ra", np.float64)
        column.bulk_load(np.array([1.0, 2.0, 3.0]))
        assert column.bind(0).count == 3
        assert column.bind(1).count == 0
        assert column.bind(2).count == 0
        with pytest.raises(ValueError):
            column.bind(3)

    def test_append_goes_to_insert_delta(self):
        column = StoredColumn("p", "ra", np.float64)
        column.bulk_load(np.array([1.0, 2.0]))
        column.append(np.array([3.0]), start_oid=2)
        assert column.bind(0).count == 2
        assert column.bind(1).count == 1
        assert column.bind(1).head.tolist() == [2]

    def test_update_delta_and_merge(self):
        column = StoredColumn("p", "ra", np.float64)
        column.bulk_load(np.array([1.0, 2.0, 3.0]))
        column.update(np.array([1]), np.array([20.0]))
        merged = column.merge_deltas()
        assert merged.tolist() == [1.0, 20.0, 3.0]

    def test_update_length_mismatch_rejected(self):
        column = StoredColumn("p", "ra", np.float64)
        with pytest.raises(ValueError):
            column.update(np.array([1, 2]), np.array([1.0]))

    def test_size_bytes_counts_all_pieces(self):
        column = StoredColumn("p", "ra", np.float32)
        column.bulk_load(np.zeros(10, dtype=np.float32))
        assert column.size_bytes >= 40


class TestColumnStore:
    def _store(self) -> ColumnStore:
        store = ColumnStore("p")
        store.add_column("objid", np.int64)
        store.add_column("ra", np.float64)
        store.bulk_load({"objid": np.arange(4), "ra": np.array([1.0, 2.0, 3.0, 4.0])})
        return store

    def test_bulk_load_and_row_count(self):
        store = self._store()
        assert store.row_count == 4

    def test_duplicate_column_rejected(self):
        store = ColumnStore("p")
        store.add_column("ra", np.float64)
        with pytest.raises(ValueError):
            store.add_column("ra", np.float64)

    def test_unknown_column_lookup(self):
        with pytest.raises(KeyError):
            self._store().column("dec")

    def test_bulk_load_validates_shape(self):
        store = ColumnStore("p")
        store.add_column("a", np.int32)
        store.add_column("b", np.int32)
        with pytest.raises(ValueError):
            store.bulk_load({"a": np.arange(3), "b": np.arange(2)})
        with pytest.raises(ValueError):
            store.bulk_load({"a": np.arange(3)})
        with pytest.raises(ValueError):
            store.bulk_load({"a": np.arange(3), "b": np.arange(3), "c": np.arange(3)})

    def test_insert_appends_rows(self):
        store = self._store()
        store.insert({"objid": np.array([100]), "ra": np.array([9.0])})
        assert store.row_count == 5
        assert store.column("ra").bind(1).count == 1

    def test_delete_marks_oids(self):
        store = self._store()
        store.delete(np.array([0, 2]))
        assert store.row_count == 2
        assert store.deletion_bat.count == 2


class TestCatalog:
    def test_create_and_lookup(self):
        catalog = Catalog()
        schema = catalog.create_table("p", {"objid": np.int64, "ra": np.float64})
        assert schema.column_names == ("objid", "ra")
        assert catalog.table_names == ["p"]
        assert catalog.schema("p").dtype_of("ra") == np.dtype(np.float64)
        assert isinstance(catalog.column("p", "ra"), StoredColumn)

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.create_table("p", {"ra": np.float64})
        with pytest.raises(ValueError):
            catalog.create_table("p", {"ra": np.float64})

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            Catalog().create_table("p", {})

    def test_unknown_lookups(self):
        catalog = Catalog()
        with pytest.raises(KeyError):
            catalog.table("missing")
        with pytest.raises(KeyError):
            catalog.schema("missing")

    def test_drop_table_clears_adaptive_registrations(self):
        catalog = Catalog()
        catalog.create_table("p", {"ra": np.float64})
        catalog.register_adaptive("p", "ra", "segmentation")
        assert catalog.is_adaptive("p", "ra")
        catalog.drop_table("p")
        assert not catalog.is_adaptive("p", "ra")
        assert catalog.table_names == []

    def test_adaptive_registration_validation(self):
        catalog = Catalog()
        catalog.create_table("p", {"ra": np.float64})
        with pytest.raises(KeyError):
            catalog.register_adaptive("p", "dec", "segmentation")
        with pytest.raises(ValueError):
            catalog.register_adaptive("p", "ra", "btree")
        catalog.register_adaptive("p", "ra", "replication")
        assert catalog.adaptive_strategy("p", "ra") == "replication"
        catalog.unregister_adaptive("p", "ra")
        assert catalog.adaptive_strategy("p", "ra") is None

    def test_table_schema_of_helper(self):
        schema = TableSchema.of("t", {"a": "int32", "b": np.float64})
        assert schema.dtype_of("a") == np.dtype("int32")
        with pytest.raises(KeyError):
            schema.dtype_of("c")
