"""Unit tests for the SQL parser."""

import pytest

from repro.sql.ast import (
    Aggregate,
    ComparisonPredicate,
    Placeholder,
    RangePredicate,
    SelectStatement,
)
from repro.sql.parser import SQLSyntaxError, parse


class TestProjectionParsing:
    def test_single_column(self):
        statement = parse("SELECT objid FROM p")
        assert statement.table == "p"
        assert statement.columns == ("objid",)
        assert statement.predicates == ()

    def test_multiple_columns(self):
        statement = parse("select objid, ra, dec from photoobj")
        assert statement.columns == ("objid", "ra", "dec")

    def test_star_projection(self):
        assert parse("SELECT * FROM p").columns == ("*",)

    def test_aggregates(self):
        statement = parse("SELECT count(*), sum(ra) FROM p")
        assert statement.is_aggregate
        assert statement.aggregates[0] == Aggregate("count", None)
        assert statement.aggregates[1] == Aggregate("sum", "ra")

    def test_keywords_are_case_insensitive(self):
        statement = parse("SeLeCt objid FrOm P wHeRe ra BeTwEeN 1 AnD 2")
        assert statement.table == "p"
        assert isinstance(statement.predicates[0], RangePredicate)


class TestPredicateParsing:
    def test_between(self):
        statement = parse("SELECT objid FROM p WHERE ra BETWEEN 205.1 AND 205.12")
        predicate = statement.predicates[0]
        assert predicate == RangePredicate("ra", 205.1, 205.12)

    def test_conjunction_of_between_and_comparison(self):
        statement = parse(
            "SELECT objid FROM p WHERE ra BETWEEN 10 AND 20 AND dec >= 1.5 AND dec < 2"
        )
        assert len(statement.predicates) == 3
        assert statement.predicates[1] == ComparisonPredicate("dec", ">=", 1.5)
        assert statement.predicates[2] == ComparisonPredicate("dec", "<", 2.0)
        assert statement.predicate_columns == ("ra", "dec")

    def test_scientific_notation_and_negative_numbers(self):
        statement = parse("SELECT objid FROM p WHERE ra BETWEEN -1.5e2 AND 2E2")
        predicate = statement.predicates[0]
        assert predicate.low == -150.0
        assert predicate.high == 200.0

    def test_limit(self):
        assert parse("SELECT objid FROM p LIMIT 5").limit == 5


class TestErrors:
    @pytest.mark.parametrize(
        "query",
        [
            "",
            "SELECT FROM p",
            "SELECT objid p",
            "SELECT objid FROM p WHERE ra BETWEEN 1",
            "SELECT objid FROM p WHERE ra 1",
            "SELECT objid FROM p WHERE BETWEEN 1 AND 2",
            "SELECT objid FROM p extra",
            "INSERT INTO p VALUES (1)",
            "SELECT objid FROM p WHERE ra @ 5",
        ],
    )
    def test_invalid_queries_rejected(self, query):
        with pytest.raises(SQLSyntaxError):
            parse(query)


class TestASTValidation:
    def test_range_predicate_orders_bounds(self):
        with pytest.raises(ValueError):
            RangePredicate("ra", 10.0, 5.0)

    def test_comparison_operator_validated(self):
        with pytest.raises(ValueError):
            ComparisonPredicate("ra", "!", 1.0)

    def test_aggregate_validation(self):
        with pytest.raises(ValueError):
            Aggregate("median", "ra")
        with pytest.raises(ValueError):
            Aggregate("sum", None)
        assert Aggregate("count", None).label == "count(*)"

    def test_select_statement_needs_exactly_one_projection_kind(self):
        with pytest.raises(ValueError):
            SelectStatement(table="p")
        with pytest.raises(ValueError):
            SelectStatement(table="p", columns=("a",), aggregates=(Aggregate("count", None),))


class TestPlaceholders:
    def test_qmark_placeholders_parse_in_prepared_mode(self):
        statement = parse(
            "SELECT objid FROM p WHERE ra BETWEEN ? AND ?", placeholders=True
        )
        predicate = statement.predicates[0]
        assert isinstance(predicate, RangePredicate)
        assert isinstance(predicate.low, Placeholder)
        assert isinstance(predicate.high, Placeholder)
        assert (predicate.low.index, predicate.high.index) == (0, 1)
        assert (predicate.low.key, predicate.high.key) == (0, 1)
        assert (predicate.low.name, predicate.high.name) == ("__p0", "__p1")

    def test_named_placeholders_keep_their_key(self):
        statement = parse(
            "SELECT objid FROM p WHERE ra BETWEEN :lo AND :Hi", placeholders=True
        )
        predicate = statement.predicates[0]
        assert (predicate.low.key, predicate.high.key) == ("lo", "hi")
        assert (predicate.low.index, predicate.high.index) == (0, 1)

    def test_repeated_name_gets_distinct_positions(self):
        statement = parse(
            "SELECT objid FROM p WHERE ra >= :x AND ra <= :x", placeholders=True
        )
        first, second = statement.predicates
        assert first.value.key == second.value.key == "x"
        assert (first.value.index, second.value.index) == (0, 1)
        assert (first.value.name, second.value.name) == ("__p0", "__p1")

    def test_comparison_placeholder(self):
        statement = parse("SELECT objid FROM p WHERE ra < ?", placeholders=True)
        assert isinstance(statement.predicates[0].value, Placeholder)

    def test_placeholders_rejected_outside_prepared_mode(self):
        with pytest.raises(SQLSyntaxError, match="prepared"):
            parse("SELECT objid FROM p WHERE ra < ?")
        with pytest.raises(SQLSyntaxError, match="prepared"):
            parse("SELECT objid FROM p WHERE ra BETWEEN :lo AND :hi")

    def test_mixed_styles_rejected(self):
        with pytest.raises(SQLSyntaxError, match="mix"):
            parse("SELECT objid FROM p WHERE ra BETWEEN ? AND :hi", placeholders=True)

    def test_placeholder_not_allowed_in_limit(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT objid FROM p LIMIT ?", placeholders=True)

    def test_range_with_placeholder_skips_parse_time_ordering(self):
        # NaN payloads defeat the high < low check; bind time re-applies it.
        statement = parse(
            "SELECT objid FROM p WHERE ra BETWEEN ? AND 5.0", placeholders=True
        )
        assert statement.predicates[0].high == 5.0
