"""Unit tests for the SQL-to-MAL compiler."""

import numpy as np
import pytest

from repro.engine.execution import ExecutionContext
from repro.mal.interpreter import Interpreter
from repro.mal.modules import default_registry
from repro.sql.compiler import SQLCompiler
from repro.sql.parser import parse
from repro.storage.catalog import Catalog


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.create_table("p", {"objid": np.int64, "ra": np.float64})
    store = catalog.table("p")
    store.bulk_load(
        {
            "objid": np.arange(1000, 1010, dtype=np.int64),
            "ra": np.array([200 + i * 0.01 for i in range(10)]),
        }
    )
    return catalog


@pytest.fixture
def compiler(catalog) -> SQLCompiler:
    return SQLCompiler(catalog)


def run(catalog, program):
    context = ExecutionContext(catalog=catalog)
    Interpreter(default_registry()).run(program, context)
    return context


class TestPlanShape:
    def test_figure1_pattern_present(self, compiler):
        program = compiler.compile(parse("SELECT objid FROM p WHERE ra BETWEEN 200.02 AND 200.05"))
        text = program.render()
        # The paper's Figure-1 structure: three bind levels, the deletion BAT,
        # uselect per level, kunion/kdifference, markT/reverse/join, result export.
        assert text.count("sql.bind(") >= 6  # ra and objid, three levels each
        assert "sql.bind_dbat" in text
        assert text.count("algebra.uselect") == 3
        assert "algebra.kunion" in text and "algebra.kdifference" in text
        assert "algebra.markT" in text and "bat.reverse" in text and "algebra.join" in text
        assert "sql.resultSet" in text and "sql.exportResult" in text

    def test_unknown_table_or_column_rejected(self, compiler):
        with pytest.raises(KeyError):
            compiler.compile(parse("SELECT objid FROM missing"))
        with pytest.raises(KeyError):
            compiler.compile(parse("SELECT nonexistent FROM p"))

    def test_statement_names_are_unique(self, compiler):
        first = compiler.compile(parse("SELECT objid FROM p"))
        second = compiler.compile(parse("SELECT objid FROM p"))
        assert first.name != second.name


class TestCompiledPlansExecuteCorrectly:
    def test_between_projection(self, catalog, compiler):
        program = compiler.compile(parse("SELECT objid FROM p WHERE ra BETWEEN 200.02 AND 200.05"))
        context = run(catalog, program)
        columns = context.exported_columns()
        assert columns["objid"].tolist() == [1002, 1003, 1004, 1005]

    def test_between_is_inclusive_on_both_bounds(self, catalog, compiler):
        program = compiler.compile(parse("SELECT ra FROM p WHERE ra BETWEEN 200.0 AND 200.01"))
        context = run(catalog, program)
        assert context.exported_columns()["ra"].tolist() == pytest.approx([200.0, 200.01])

    def test_comparison_predicates(self, catalog, compiler):
        program = compiler.compile(parse("SELECT objid FROM p WHERE ra >= 200.07"))
        context = run(catalog, program)
        assert context.exported_columns()["objid"].tolist() == [1007, 1008, 1009]

    def test_conjunction_intersects(self, catalog, compiler):
        program = compiler.compile(
            parse("SELECT objid FROM p WHERE ra >= 200.03 AND ra < 200.06 AND objid < 1005")
        )
        context = run(catalog, program)
        assert context.exported_columns()["objid"].tolist() == [1003, 1004]

    def test_no_where_clause_returns_all_rows(self, catalog, compiler):
        program = compiler.compile(parse("SELECT objid FROM p"))
        context = run(catalog, program)
        assert context.exported_columns()["objid"].size == 10

    def test_star_projection_returns_all_columns(self, catalog, compiler):
        program = compiler.compile(parse("SELECT * FROM p WHERE ra BETWEEN 200.0 AND 200.02"))
        context = run(catalog, program)
        columns = context.exported_columns()
        assert set(columns) == {"objid", "ra"}

    def test_aggregates(self, catalog, compiler):
        program = compiler.compile(
            parse("SELECT count(*), sum(objid), avg(ra) FROM p WHERE ra BETWEEN 200.0 AND 200.03")
        )
        context = run(catalog, program)
        assert context.scalars["count(*)"] == 4
        assert context.scalars["sum(objid)"] == float(1000 + 1001 + 1002 + 1003)
        assert context.scalars["avg(ra)"] == pytest.approx(200.015)

    def test_deleted_rows_are_excluded(self, catalog, compiler):
        catalog.table("p").delete(np.array([2, 3]))
        program = compiler.compile(parse("SELECT objid FROM p WHERE ra BETWEEN 200.0 AND 200.05"))
        context = run(catalog, program)
        assert context.exported_columns()["objid"].tolist() == [1000, 1001, 1004, 1005]

    def test_inserted_rows_are_included(self, catalog, compiler):
        catalog.table("p").insert(
            {"objid": np.array([2000], dtype=np.int64), "ra": np.array([200.021])}
        )
        program = compiler.compile(parse("SELECT objid FROM p WHERE ra BETWEEN 200.02 AND 200.03"))
        context = run(catalog, program)
        assert sorted(context.exported_columns()["objid"].tolist()) == [1002, 1003, 2000]

    def test_updated_values_are_visible(self, catalog, compiler):
        catalog.column("p", "ra").update(np.array([0]), np.array([359.9]))
        program = compiler.compile(parse("SELECT objid FROM p WHERE ra BETWEEN 359.0 AND 360.0"))
        context = run(catalog, program)
        assert context.exported_columns()["objid"].tolist() == [1000]
