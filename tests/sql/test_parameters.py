"""Tests for query parameterization, shape keys and literal masking."""

from decimal import Decimal

import numpy as np
import pytest

from repro.engine.plan_cache import normalize_sql
from repro.sql.ast import ComparisonPredicate, RangePredicate
from repro.sql.parameters import (
    BindError,
    BindingSpec,
    Parameter,
    mask_literals,
    parameter_names,
    parameterize,
    prepared_binding,
    range_parameter_checks,
    statement_shape,
    substitute_placeholders,
)
from repro.sql.parser import parse


def shaped(sql: str):
    return parameterize(parse(sql))


class TestParameter:
    def test_behaves_like_its_float_value(self):
        parameter = Parameter("__p0", 10.5)
        assert parameter == 10.5
        assert parameter + 1 == 11.5
        assert parameter.name == "__p0"
        assert "10.5" in repr(parameter)


class TestParameterize:
    def test_range_literals_become_parameters(self):
        result = shaped("SELECT objid FROM p WHERE ra BETWEEN 10 AND 40")
        assert result.arguments == {"__p0": 10.0, "__p1": 40.0}
        predicate = result.statement.predicates[0]
        assert isinstance(predicate, RangePredicate)
        assert isinstance(predicate.low, Parameter) and predicate.low.name == "__p0"
        assert isinstance(predicate.high, Parameter) and predicate.high.name == "__p1"

    def test_comparison_literal_becomes_a_parameter(self):
        result = shaped("SELECT objid FROM p WHERE ra < 7")
        assert result.arguments == {"__p0": 7.0}
        predicate = result.statement.predicates[0]
        assert isinstance(predicate, ComparisonPredicate)
        assert isinstance(predicate.value, Parameter)

    def test_same_shape_for_different_literals(self):
        first = shaped("SELECT objid FROM p WHERE ra BETWEEN 10 AND 40")
        second = shaped("SELECT objid FROM p WHERE ra BETWEEN 200.5 AND 201.5")
        assert first.shape == second.shape
        assert first.arguments != second.arguments

    def test_shape_distinguishes_structure(self):
        base = shaped("SELECT objid FROM p WHERE ra BETWEEN 10 AND 40").shape
        assert shaped("SELECT objid FROM p WHERE dec BETWEEN 10 AND 40").shape != base
        assert shaped("SELECT objid FROM p WHERE ra < 40").shape != base
        assert shaped("SELECT ra FROM p WHERE ra BETWEEN 10 AND 40").shape != base
        assert shaped("SELECT objid FROM q WHERE ra BETWEEN 10 AND 40").shape != base
        assert (
            shaped("SELECT objid FROM p WHERE ra BETWEEN 10 AND 40 LIMIT 5").shape != base
        )
        assert shaped("SELECT count(*) FROM p WHERE ra BETWEEN 10 AND 40").shape != base

    def test_multiple_predicates_number_parameters_in_textual_order(self):
        result = shaped("SELECT objid FROM p WHERE ra BETWEEN 10 AND 40 AND dec > 5")
        assert result.arguments == {"__p0": 10.0, "__p1": 40.0, "__p2": 5.0}
        assert parameter_names(result.statement) == ("__p0", "__p1", "__p2")

    def test_no_predicates_no_parameters(self):
        result = shaped("SELECT objid FROM p")
        assert result.arguments == {}
        assert parameter_names(result.statement) == ()


class TestMaskLiterals:
    def test_masks_literals_and_extracts_values(self):
        masked, values = mask_literals(
            normalize_sql("SELECT objid FROM p WHERE ra BETWEEN 10.5 AND 40")
        )
        assert masked == "select objid from p where ra between ? and ?"
        assert values == (10.5, 40.0)

    def test_literal_variants_share_one_masked_text(self):
        first = mask_literals(normalize_sql("SELECT x FROM t WHERE x < 10"))
        second = mask_literals(normalize_sql("SELECT  x FROM t   WHERE x < 1e1"))
        assert first[0] == second[0]
        assert first[1] == second[1] == (10.0,)

    def test_digits_inside_identifiers_are_not_masked(self):
        masked, values = mask_literals("select m1 from t2 where col3 < 5")
        assert masked == "select m1 from t2 where col3 < ?"
        assert values == (5.0,)

    def test_negative_literals_after_operators(self):
        masked, values = mask_literals("select x from t where x > -5")
        assert masked == "select x from t where x > ?"
        assert values == (-5.0,)
        masked, values = mask_literals("select x from t where x>-5")
        assert masked == "select x from t where x>?"
        assert values == (-5.0,)

    def test_adjacent_numbers_mask_divergently_but_harmlessly(self):
        # "10-5" lexes as two numbers (10, -5) and never parses; the masked
        # text keeps the "-" so it can never collide with an installed shape.
        masked, values = mask_literals("select x from t where x between 10-5 and 20")
        assert masked == "select x from t where x between ?-? and ?"
        assert values == (10.0, 5.0, 20.0)

    def test_raw_question_marks_survive_masking(self):
        masked, values = mask_literals("select x from t where x between ? and 5")
        assert masked == "select x from t where x between ? and ?"
        assert values == (5.0,)  # fewer values than '?' occurrences → never matches


class TestRangeParameterChecks:
    def test_checks_cover_range_predicates_only(self):
        result = shaped("SELECT objid FROM p WHERE ra BETWEEN 10 AND 40 AND dec > 5")
        assert range_parameter_checks(result.statement) == ((0, 1),)

    def test_unparameterized_statement_has_no_checks(self):
        assert range_parameter_checks(parse("SELECT x FROM t WHERE x BETWEEN 1 AND 2")) == ()

    def test_invalid_range_still_raises_at_parse_time(self):
        with pytest.raises(ValueError, match="high < low"):
            parse("SELECT x FROM t WHERE x BETWEEN 9 AND 3")


class TestStatementShape:
    def test_prepared_placeholder_shape_equals_lifted_literal_shape(self):
        literal = shaped("SELECT objid FROM p WHERE ra BETWEEN 1.0 AND 2.0")
        prepared = parse(
            "SELECT objid FROM p WHERE ra BETWEEN ? AND ?", placeholders=True
        )
        assert statement_shape(prepared) == literal.shape

    def test_mixed_literal_shape_is_distinct(self):
        literal = shaped("SELECT objid FROM p WHERE ra BETWEEN 1.0 AND 20.0")
        mixed = parse(
            "SELECT objid FROM p WHERE ra BETWEEN ? AND 20.0", placeholders=True
        )
        assert statement_shape(mixed) != literal.shape

    def test_different_literals_same_shape_after_lifting(self):
        a = shaped("SELECT objid FROM p WHERE ra BETWEEN 1.0 AND 2.0")
        b = shaped("SELECT objid FROM p WHERE ra BETWEEN 7.5 AND 9.5")
        assert a.shape == b.shape


def prepared_spec(sql: str) -> BindingSpec:
    return prepared_binding(parse(sql, placeholders=True))


class TestBindingSpec:
    def test_qmark_spec(self):
        spec = prepared_spec("SELECT objid FROM p WHERE ra BETWEEN ? AND ?")
        assert spec.style == "qmark"
        assert spec.keys == (0, 1)
        assert spec.range_checks == ((0, 0.0, 1, 0.0),)
        assert spec.bind((1.0, 2.0)) == (1.0, 2.0)

    def test_named_spec_case_insensitive(self):
        spec = prepared_spec("SELECT objid FROM p WHERE ra BETWEEN :lo AND :hi")
        assert spec.style == "named"
        assert spec.keys == ("lo", "hi")
        assert spec.bind({"LO": 1, "hi": 2.5}) == (1.0, 2.5)

    def test_no_placeholders(self):
        spec = prepared_spec("SELECT objid FROM p WHERE ra BETWEEN 1.0 AND 2.0")
        assert spec.style == "none" and spec.count == 0
        assert spec.bind(()) == ()
        assert spec.bind(None) == ()
        with pytest.raises(BindError):
            spec.bind((1.0,))

    def test_mixed_range_check_against_baked_literal(self):
        spec = prepared_spec("SELECT objid FROM p WHERE ra BETWEEN ? AND 10.0")
        assert spec.range_checks == ((0, 0.0, -1, 10.0),)
        assert spec.bind((3.0,)) == (3.0,)
        with pytest.raises(BindError, match="high >= low"):
            spec.bind((11.0,))

    def test_comparison_placeholders_have_no_range_checks(self):
        spec = prepared_spec("SELECT objid FROM p WHERE ra < ? AND ra > ?")
        assert spec.range_checks == ()
        # No ordering constraint between independent comparisons.
        assert spec.bind((1.0, 99.0)) == (1.0, 99.0)

    def test_bind_rejects_nan_but_not_inf(self):
        spec = prepared_spec("SELECT objid FROM p WHERE ra BETWEEN ? AND ?")
        with pytest.raises(BindError, match="NaN"):
            spec.bind((float("nan"), 1.0))
        assert spec.bind((float("-inf"), float("inf"))) == (float("-inf"), float("inf"))

    def test_bind_rejects_non_numeric_and_bool(self):
        spec = prepared_spec("SELECT objid FROM p WHERE ra < ?")
        for bad in ("1", None, object(), [1.0], True):
            with pytest.raises(BindError, match="numeric"):
                spec.bind((bad,))


class TestSubstitutePlaceholders:
    def test_substitution_produces_concrete_statement(self):
        statement = parse(
            "SELECT objid FROM p WHERE ra BETWEEN ? AND ?", placeholders=True
        )
        spec = prepared_binding(statement)
        concrete = substitute_placeholders(statement, spec.bind((2.0, 4.0)))
        predicate = concrete.predicates[0]
        assert not isinstance(predicate.low, Parameter)
        assert (predicate.low, predicate.high) == (2.0, 4.0)

    def test_substitution_keeps_baked_literals(self):
        statement = parse(
            "SELECT objid FROM p WHERE ra BETWEEN ? AND 9.0", placeholders=True
        )
        concrete = substitute_placeholders(statement, (3.0,))
        assert (concrete.predicates[0].low, concrete.predicates[0].high) == (3.0, 9.0)

    def test_named_keys_colliding_by_case_rejected(self):
        spec = prepared_spec("SELECT objid FROM p WHERE ra BETWEEN :lo AND :hi")
        with pytest.raises(BindError, match="more than once"):
            spec.bind({"lo": 1.0, "hi": 2.0, "HI": 3.0})

    def test_decimal_accepted(self):
        from decimal import Decimal

        spec = prepared_spec("SELECT objid FROM p WHERE ra BETWEEN ? AND ?")
        assert spec.bind((Decimal("1.5"), Decimal("2"))) == (1.5, 2.0)
        with pytest.raises(BindError, match="NaN"):
            spec.bind((Decimal("NaN"), Decimal("2")))

    def test_unordered_containers_rejected(self):
        spec = prepared_spec("SELECT objid FROM p WHERE ra BETWEEN ? AND ?")
        for bad in ({1.0, 2.0}, frozenset({1.0, 2.0}), {"a": 1.0, "b": 2.0}.values()):
            with pytest.raises(BindError, match="ordered sequence"):
                spec.bind(bad)


class TestBindMany:
    def _spec(self):
        statement = parse("SELECT x FROM t WHERE x BETWEEN ? AND ?", placeholders=True)
        return prepared_binding(statement)

    def test_fast_path_matches_per_member_bind(self):
        spec = self._spec()
        batch = [(1.0, 2.0), (3, 7), (0.5, 0.5)]
        assert spec.bind_many(batch) == [spec.bind(p) for p in batch]

    def test_heterogeneous_values_fall_back_and_match(self):
        spec = self._spec()
        batch = [(Decimal("1.5"), 2.0), (np.float64(3.0), np.int64(7))]
        assert spec.bind_many(batch) == [spec.bind(p) for p in batch]

    def test_reversed_range_raises_the_per_member_error(self):
        spec = self._spec()
        with pytest.raises(BindError, match="high >= low"):
            spec.bind_many([(1.0, 2.0), (9.0, 3.0)])

    def test_nan_raises_the_per_member_error(self):
        spec = self._spec()
        with pytest.raises(BindError, match="NaN"):
            spec.bind_many([(1.0, 2.0), (float("nan"), 3.0)])

    def test_wrong_arity_raises(self):
        spec = self._spec()
        with pytest.raises(BindError, match="parameter"):
            spec.bind_many([(1.0, 2.0), (3.0,)])

    def test_boolean_rejected(self):
        spec = self._spec()
        with pytest.raises(BindError, match="numeric"):
            spec.bind_many([(True, 2.0)])

    def test_scalar_member_raises_bind_error(self):
        spec = self._spec()
        with pytest.raises(BindError, match="ordered sequence"):
            spec.bind_many([3.0])

    def test_named_style_falls_back(self):
        statement = parse(
            "SELECT x FROM t WHERE x BETWEEN :lo AND :hi", placeholders=True
        )
        spec = prepared_binding(statement)
        assert spec.bind_many([{"lo": 1.0, "hi": 2.0}]) == [
            spec.bind({"lo": 1.0, "hi": 2.0})
        ]

    def test_empty_batch(self):
        assert self._spec().bind_many([]) == []
