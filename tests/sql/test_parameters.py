"""Tests for query parameterization, shape keys and literal masking."""

import pytest

from repro.engine.plan_cache import normalize_sql
from repro.sql.ast import ComparisonPredicate, RangePredicate
from repro.sql.parameters import (
    Parameter,
    mask_literals,
    parameter_names,
    parameterize,
    range_parameter_checks,
)
from repro.sql.parser import parse


def shaped(sql: str):
    return parameterize(parse(sql))


class TestParameter:
    def test_behaves_like_its_float_value(self):
        parameter = Parameter("__p0", 10.5)
        assert parameter == 10.5
        assert parameter + 1 == 11.5
        assert parameter.name == "__p0"
        assert "10.5" in repr(parameter)


class TestParameterize:
    def test_range_literals_become_parameters(self):
        result = shaped("SELECT objid FROM p WHERE ra BETWEEN 10 AND 40")
        assert result.arguments == {"__p0": 10.0, "__p1": 40.0}
        predicate = result.statement.predicates[0]
        assert isinstance(predicate, RangePredicate)
        assert isinstance(predicate.low, Parameter) and predicate.low.name == "__p0"
        assert isinstance(predicate.high, Parameter) and predicate.high.name == "__p1"

    def test_comparison_literal_becomes_a_parameter(self):
        result = shaped("SELECT objid FROM p WHERE ra < 7")
        assert result.arguments == {"__p0": 7.0}
        predicate = result.statement.predicates[0]
        assert isinstance(predicate, ComparisonPredicate)
        assert isinstance(predicate.value, Parameter)

    def test_same_shape_for_different_literals(self):
        first = shaped("SELECT objid FROM p WHERE ra BETWEEN 10 AND 40")
        second = shaped("SELECT objid FROM p WHERE ra BETWEEN 200.5 AND 201.5")
        assert first.shape == second.shape
        assert first.arguments != second.arguments

    def test_shape_distinguishes_structure(self):
        base = shaped("SELECT objid FROM p WHERE ra BETWEEN 10 AND 40").shape
        assert shaped("SELECT objid FROM p WHERE dec BETWEEN 10 AND 40").shape != base
        assert shaped("SELECT objid FROM p WHERE ra < 40").shape != base
        assert shaped("SELECT ra FROM p WHERE ra BETWEEN 10 AND 40").shape != base
        assert shaped("SELECT objid FROM q WHERE ra BETWEEN 10 AND 40").shape != base
        assert (
            shaped("SELECT objid FROM p WHERE ra BETWEEN 10 AND 40 LIMIT 5").shape != base
        )
        assert shaped("SELECT count(*) FROM p WHERE ra BETWEEN 10 AND 40").shape != base

    def test_multiple_predicates_number_parameters_in_textual_order(self):
        result = shaped("SELECT objid FROM p WHERE ra BETWEEN 10 AND 40 AND dec > 5")
        assert result.arguments == {"__p0": 10.0, "__p1": 40.0, "__p2": 5.0}
        assert parameter_names(result.statement) == ("__p0", "__p1", "__p2")

    def test_no_predicates_no_parameters(self):
        result = shaped("SELECT objid FROM p")
        assert result.arguments == {}
        assert parameter_names(result.statement) == ()


class TestMaskLiterals:
    def test_masks_literals_and_extracts_values(self):
        masked, values = mask_literals(
            normalize_sql("SELECT objid FROM p WHERE ra BETWEEN 10.5 AND 40")
        )
        assert masked == "select objid from p where ra between ? and ?"
        assert values == (10.5, 40.0)

    def test_literal_variants_share_one_masked_text(self):
        first = mask_literals(normalize_sql("SELECT x FROM t WHERE x < 10"))
        second = mask_literals(normalize_sql("SELECT  x FROM t   WHERE x < 1e1"))
        assert first[0] == second[0]
        assert first[1] == second[1] == (10.0,)

    def test_digits_inside_identifiers_are_not_masked(self):
        masked, values = mask_literals("select m1 from t2 where col3 < 5")
        assert masked == "select m1 from t2 where col3 < ?"
        assert values == (5.0,)

    def test_negative_literals_after_operators(self):
        masked, values = mask_literals("select x from t where x > -5")
        assert masked == "select x from t where x > ?"
        assert values == (-5.0,)
        masked, values = mask_literals("select x from t where x>-5")
        assert masked == "select x from t where x>?"
        assert values == (-5.0,)

    def test_adjacent_numbers_mask_divergently_but_harmlessly(self):
        # "10-5" lexes as two numbers (10, -5) and never parses; the masked
        # text keeps the "-" so it can never collide with an installed shape.
        masked, values = mask_literals("select x from t where x between 10-5 and 20")
        assert masked == "select x from t where x between ?-? and ?"
        assert values == (10.0, 5.0, 20.0)

    def test_raw_question_marks_survive_masking(self):
        masked, values = mask_literals("select x from t where x between ? and 5")
        assert masked == "select x from t where x between ? and ?"
        assert values == (5.0,)  # fewer values than '?' occurrences → never matches


class TestRangeParameterChecks:
    def test_checks_cover_range_predicates_only(self):
        result = shaped("SELECT objid FROM p WHERE ra BETWEEN 10 AND 40 AND dec > 5")
        assert range_parameter_checks(result.statement) == ((0, 1),)

    def test_unparameterized_statement_has_no_checks(self):
        assert range_parameter_checks(parse("SELECT x FROM t WHERE x BETWEEN 1 AND 2")) == ()

    def test_invalid_range_still_raises_at_parse_time(self):
        with pytest.raises(ValueError, match="high < low"):
            parse("SELECT x FROM t WHERE x BETWEEN 9 AND 3")
