"""The batch admission controller: windows, waves, backpressure, fairness.

Every test runs against a fake database whose ``execute_wave`` records the
waves it was handed, so wave composition is asserted directly — the real
engine integration is covered by ``tests/server/test_server.py`` and the
``execute_wave`` tests in ``tests/engine/test_batch_execution.py``.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api.exceptions import OperationalError, ProgrammingError
from repro.server.admission import AdmissionController, AdmissionStats

#: Long enough that a test can queue several submissions inside one window,
#: short enough that draining (and ``stop()``) stays fast.
WINDOW_US = 50_000.0


class FakeDatabase:
    """Records every wave; answers member ``(prepared, values)`` with values."""

    def __init__(self, fail: Exception | None = None):
        self.waves: list[list[tuple]] = []
        self.fail = fail

    def execute_wave(self, payload, *, isolate=False):
        self.waves.append(list(payload))
        if self.fail is not None:
            raise self.fail
        return [values for _, values in payload]


class Controller:
    """An async context manager pairing a controller with its worker thread."""

    def __init__(self, database=None, **knobs):
        self.database = database if database is not None else FakeDatabase()
        self.executor = ThreadPoolExecutor(max_workers=1)
        self.controller = AdmissionController(
            self.database, executor=self.executor, **knobs
        )

    async def __aenter__(self):
        await self.controller.start()
        return self

    async def __aexit__(self, *exc_info):
        await self.controller.stop()
        self.executor.shutdown(wait=True)

    def __getattr__(self, name):
        return getattr(self.controller, name)


class TestConstruction:
    def test_rejects_bad_knobs(self):
        database, executor = FakeDatabase(), ThreadPoolExecutor(max_workers=1)
        with pytest.raises(ValueError):
            AdmissionController(database, executor=executor, batch_window_us=-1.0)
        with pytest.raises(ValueError):
            AdmissionController(database, executor=executor, max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(database, executor=executor, max_wave=0)
        with pytest.raises(ValueError):
            AdmissionController(database, executor=executor, overflow="drop")
        with pytest.raises(ValueError):
            AdmissionController(
                database, executor=executor, max_inflight_per_connection=0
            )
        executor.shutdown(wait=True)

    def test_per_connection_cap_defaults_to_a_quarter(self):
        executor = ThreadPoolExecutor(max_workers=1)
        controller = AdmissionController(
            FakeDatabase(), executor=executor, max_inflight=100
        )
        assert controller.max_inflight_per_connection == 25
        assert controller.knobs()["max_inflight_per_connection"] == 25
        executor.shutdown(wait=True)

    def test_submit_before_start_raises(self):
        executor = ThreadPoolExecutor(max_workers=1)
        controller = AdmissionController(FakeDatabase(), executor=executor)
        with pytest.raises(OperationalError, match="not running"):
            asyncio.run(controller.submit("c1", object(), (1.0,)))
        executor.shutdown(wait=True)


class TestWaves:
    def test_concurrent_submissions_ride_one_wave(self):
        async def go():
            async with Controller(batch_window_us=WINDOW_US) as controller:
                plan = object()
                futures = [
                    await controller.submit(f"conn-{i}", plan, (float(i), float(i) + 1))
                    for i in range(3)
                ]
                results = await asyncio.gather(*futures)
                return controller.database.waves, results, controller.stats

        waves, results, stats = asyncio.run(go())
        assert len(waves) == 1 and len(waves[0]) == 3
        assert results == [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]
        assert stats.waves == 1
        assert stats.wave_members == 3
        assert stats.last_wave == 3 and stats.max_wave_seen == 3
        assert stats.admitted == stats.completed == 3
        assert stats.connections_seen == {"conn-0", "conn-1", "conn-2"}

    def test_max_wave_splits_a_backlog(self):
        async def go():
            async with Controller(
                batch_window_us=WINDOW_US, max_wave=2,
                max_inflight_per_connection=16,
            ) as controller:
                plan = object()
                futures = [
                    await controller.submit("conn", plan, (float(i),))
                    for i in range(5)
                ]
                await asyncio.gather(*futures)
                return controller.database.waves

        waves = asyncio.run(go())
        assert [len(wave) for wave in waves] == [2, 2, 1]

    def test_wave_failure_fails_every_member_with_a_mapped_error(self):
        async def go():
            database = FakeDatabase(fail=KeyError("no such table"))
            async with Controller(database, batch_window_us=1.0) as controller:
                futures = [
                    await controller.submit("conn", object(), (float(i),))
                    for i in range(2)
                ]
                outcomes = await asyncio.gather(*futures, return_exceptions=True)
                return outcomes, controller.stats

        outcomes, stats = asyncio.run(go())
        assert all(isinstance(o, ProgrammingError) for o in outcomes)
        assert stats.failed == 2 and stats.completed == 0

    def test_zero_window_still_batches_a_burst(self):
        async def go():
            async with Controller(batch_window_us=0.0) as controller:
                plan = object()
                futures = [
                    await controller.submit("conn-a", plan, (float(i),))
                    for i in range(4)
                ]
                await asyncio.gather(*futures)
                return controller.database.waves

        waves = asyncio.run(go())
        # No window: the flush loop drains whatever piled up while the event
        # loop was busy — everything submitted before the first drain batches.
        assert sum(len(wave) for wave in waves) == 4


class TestFairness:
    def test_waves_drain_round_robin_across_connections(self):
        async def go():
            async with Controller(
                batch_window_us=WINDOW_US, max_wave=4,
                max_inflight_per_connection=32,
            ) as controller:
                plan = object()
                futures = [
                    await controller.submit("hog", plan, (float(i),))
                    for i in range(10)
                ]
                futures.append(await controller.submit("tick", plan, (99.0,)))
                await asyncio.gather(*futures)
                return controller.database.waves

        waves = asyncio.run(go())
        # The interactive client's lone query rides the very first wave even
        # though the hog queued 10 requests ahead of it.
        assert (99.0,) in [values for _, values in waves[0]]

    def test_per_connection_cap_blocks_the_hog_not_the_neighbour(self):
        async def go():
            async with Controller(
                batch_window_us=WINDOW_US, max_inflight_per_connection=2
            ) as controller:
                plan = object()
                first = await controller.submit("hog", plan, (1.0,))
                second = await controller.submit("hog", plan, (2.0,))
                blocked = asyncio.ensure_future(
                    controller.submit("hog", plan, (3.0,))
                )
                await asyncio.sleep(0)
                assert not blocked.done()  # the hog is over its cap: it waits
                neighbour = await controller.submit("other", plan, (4.0,))
                assert controller.connection_pending("hog") == 2
                assert controller.connection_pending("other") == 1
                third = await blocked  # a drained wave unblocks the hog
                await asyncio.gather(first, second, neighbour, third)
                return controller.database.waves

        waves = asyncio.run(go())
        assert sum(len(wave) for wave in waves) == 4


class TestBackpressure:
    def test_overflow_error_rejects_beyond_max_inflight(self):
        async def go():
            async with Controller(
                batch_window_us=WINDOW_US, max_inflight=2,
                max_inflight_per_connection=8, overflow="error",
            ) as controller:
                plan = object()
                futures = [
                    await controller.submit("conn", plan, (1.0,)),
                    await controller.submit("conn", plan, (2.0,)),
                ]
                with pytest.raises(OperationalError, match="admission queue full"):
                    await controller.submit("conn", plan, (3.0,))
                rejected = controller.stats.rejected_overflow
                await asyncio.gather(*futures)
                return rejected

        assert asyncio.run(go()) == 1

    def test_overflow_wait_blocks_until_a_wave_drains(self):
        async def go():
            async with Controller(
                batch_window_us=WINDOW_US, max_inflight=2,
                max_inflight_per_connection=8, overflow="wait",
            ) as controller:
                plan = object()
                futures = [
                    await controller.submit("conn", plan, (1.0,)),
                    await controller.submit("conn", plan, (2.0,)),
                ]
                waiting = asyncio.ensure_future(
                    controller.submit("conn", plan, (3.0,))
                )
                await asyncio.sleep(0)
                assert not waiting.done()
                futures.append(await waiting)  # resolves after the first drain
                results = await asyncio.gather(*futures)
                stats = controller.stats
                return results, stats

        results, stats = asyncio.run(go())
        assert sorted(results) == [(1.0,), (2.0,), (3.0,)]
        assert stats.rejected_overflow == 0
        assert stats.completed == 3


class TestLifecycle:
    def test_stop_fails_everything_still_queued(self):
        async def go():
            wrapper = Controller(batch_window_us=WINDOW_US)
            controller = await wrapper.__aenter__()
            future = await controller.submit("conn", object(), (1.0,))
            await wrapper.__aexit__(None, None, None)
            with pytest.raises(OperationalError, match="shutting down"):
                await future
            assert controller.pending == 0
            with pytest.raises(OperationalError, match="not running"):
                await controller.submit("conn", object(), (2.0,))

        asyncio.run(go())

    def test_forget_connection_cancels_its_queue_only(self):
        async def go():
            async with Controller(batch_window_us=WINDOW_US) as controller:
                plan = object()
                doomed = await controller.submit("gone", plan, (1.0,))
                doomed_too = await controller.submit("gone", plan, (2.0,))
                kept = await controller.submit("alive", plan, (3.0,))
                controller.forget_connection("gone")
                assert controller.connection_pending("gone") == 0
                assert controller.connection_pending("alive") == 1
                assert doomed.cancelled() or doomed.done() is False
                result = await kept
                return doomed, doomed_too, result, controller.database.waves

        doomed, doomed_too, result, waves = asyncio.run(go())
        assert doomed.cancelled() and doomed_too.cancelled()
        assert result == (3.0,)
        # The forgotten connection's requests never reached the engine.
        assert all(values == (3.0,) for wave in waves for _, values in wave)


class TestStats:
    def test_as_dict_shape(self):
        stats = AdmissionStats()
        stats.admitted = 5
        stats.waves = 2
        stats.wave_members = 5
        rendered = stats.as_dict(pending=1)
        assert rendered["admitted"] == 5
        assert rendered["mean_wave"] == 2.5
        assert rendered["pending"] == 1
        assert set(rendered) == {
            "admitted", "completed", "failed", "rejected_overflow",
            "waves", "last_wave", "max_wave_seen", "mean_wave", "pending",
            "retries", "wave_timeouts", "member_failures", "rebuilds_started",
        }

    def test_mean_wave_is_zero_before_any_wave(self):
        assert AdmissionStats().as_dict(pending=0)["mean_wave"] == 0.0

    def test_knobs_mirror_the_constructor(self):
        executor = ThreadPoolExecutor(max_workers=1)
        controller = AdmissionController(
            FakeDatabase(), executor=executor, batch_window_us=125.0,
            max_inflight=64, max_wave=8, max_inflight_per_connection=4,
            overflow="wait",
        )
        assert controller.knobs() == {
            "batch_window_us": 125.0,
            "max_inflight": 64,
            "max_wave": 8,
            "max_inflight_per_connection": 4,
            "overflow": "wait",
            "wave_deadline_s": None,
            "max_retries": 2,
            "retry_backoff_s": 0.05,
            "auto_rebuild": True,
            "replicas": 1,
            "read_workers": None,  # defers to each engine's own attribute
        }
        executor.shutdown(wait=True)
