"""End-to-end server tests: real sockets, real engine, the async client.

Each test spins up a :class:`ReproServer` on an ephemeral loopback port
inside its own ``asyncio.run`` (the suite does not depend on pytest-asyncio)
and talks to it through ``repro.aio`` — or through raw frames where the test
is about the protocol edge itself.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

import repro.aio
from repro.api.exceptions import (
    InterfaceError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
)
from repro.server import PROTOCOL_VERSION, ReproServer, read_frame, serve, write_frame

SQL = "select objid from p where ra between ? and ?"


def run(main):
    return asyncio.run(main())


async def start_loaded_server(**knobs) -> ReproServer:
    """A started server preloaded (over the wire) with a 2 000-row table."""
    knobs.setdefault("batch_window_us", 2_000.0)
    server = await serve(port=0, **knobs)
    rng = np.random.default_rng(17)
    connection = await repro.aio.connect(*server.address)
    await connection.admin.create_table("p", {"objid": "int64", "ra": "float64"})
    await connection.admin.bulk_load(
        "p",
        {
            "objid": np.arange(2_000, dtype=np.int64),
            "ra": rng.uniform(0.0, 360.0, size=2_000),
        },
    )
    await connection.close()
    return server


def expected_objids(low: float, high: float) -> list[int]:
    rng = np.random.default_rng(17)
    objid = np.arange(2_000, dtype=np.int64)
    ra = rng.uniform(0.0, 360.0, size=2_000)
    return sorted(objid[(ra >= low) & (ra <= high)].tolist())


class TestHandshake:
    def test_hello_reports_version_and_knobs(self):
        async def go():
            async with ReproServer(port=0, batch_window_us=123.0) as server:
                connection = await repro.aio.connect(*server.address)
                info = dict(connection.server_info)
                await connection.close()
                return info

        info = run(go)
        assert info["server"] == "repro"
        assert info["protocol"] == PROTOCOL_VERSION
        assert info["knobs"]["batch_window_us"] == 123.0
        assert info["knobs"]["overflow"] == "error"

    def test_protocol_mismatch_is_rejected(self):
        async def go():
            async with ReproServer(port=0) as server:
                reader, writer = await asyncio.open_connection(*server.address)
                write_frame(writer, {"type": "hello", "id": 1, "protocol": 99})
                await writer.drain()
                reply = await read_frame(reader)
                trailer = await read_frame(reader)  # server hangs up after
                writer.close()
                return reply, trailer

        reply, trailer = run(go)
        assert reply["type"] == "error"
        assert reply["error"] == "ProgrammingError"
        assert "protocol 99" in reply["message"]
        assert trailer is None

    def test_first_frame_must_be_hello(self):
        async def go():
            async with ReproServer(port=0) as server:
                reader, writer = await asyncio.open_connection(*server.address)
                write_frame(writer, {"type": "execute", "id": 1, "sql": "select 1"})
                await writer.drain()
                reply = await read_frame(reader)
                writer.close()
                return reply

        reply = run(go)
        assert reply["error"] == "ProgrammingError"
        assert "hello" in reply["message"]


class TestQueries:
    def test_literal_execute_and_fetch(self):
        async def go():
            server = await start_loaded_server()
            async with server:
                connection = await repro.aio.connect(*server.address)
                cursor = await connection.execute(
                    "select objid from p where ra between 10.0 and 20.0"
                )
                rows = cursor.fetchall()
                description = cursor.description
                await connection.close()
                return rows, description

        rows, description = run(go)
        assert sorted(row[0] for row in rows) == expected_objids(10.0, 20.0)
        assert description[0][0] == "objid"
        assert description[0][1] == "int64"

    def test_bound_execute_goes_through_admission(self):
        async def go():
            server = await start_loaded_server()
            async with server:
                connection = await repro.aio.connect(*server.address)
                cursor = await connection.execute(SQL, (10.0, 20.0))
                rows = cursor.fetchall()
                await connection.close()
                waves = server.admission.stats.waves
                return rows, waves

        rows, waves = run(go)
        assert sorted(row[0] for row in rows) == expected_objids(10.0, 20.0)
        assert waves >= 1

    def test_numpy_scalar_params_survive_the_wire(self):
        async def go():
            server = await start_loaded_server()
            async with server:
                connection = await repro.aio.connect(*server.address)
                cursor = await connection.execute(
                    SQL, (np.float64(10.0), np.float64(20.0))
                )
                rows = cursor.fetchall()
                await connection.close()
                return rows

        rows = run(go)
        assert sorted(row[0] for row in rows) == expected_objids(10.0, 20.0)

    def test_executemany_batches_disjoint_bindings_into_one_wave(self):
        bindings = [(10.0, 12.0), (100.0, 103.0), (350.0, 351.0)]

        async def go():
            server = await start_loaded_server()
            async with server:
                connection = await repro.aio.connect(*server.address)
                cursor = await connection.executemany(SQL, bindings)
                results = cursor.results
                stats = await connection.admin.cache_stats()
                await connection.close()
                return results, stats

        results, stats = run(go)
        assert len(results) == 3
        assert all(result.batched for result in results)
        for (low, high), result in zip(bindings, results):
            assert sorted(result.columns["objid"].tolist()) == expected_objids(low, high)
            assert result.columns["objid"].dtype == np.int64
        assert stats["batch"]["waves"] >= 1
        assert stats["batch"]["batched_queries"] >= 3

    def test_concurrent_clients_share_a_wave(self):
        async def go():
            server = await start_loaded_server(batch_window_us=20_000.0)
            async with server:
                connections = [
                    await repro.aio.connect(*server.address) for _ in range(4)
                ]
                cursors = await asyncio.gather(
                    *(
                        connection.execute(SQL, (low, low + 5.0))
                        for connection, low in zip(connections, (10.0, 80.0, 150.0, 220.0))
                    )
                )
                batched = [cursor.result.batched for cursor in cursors]
                stats = server.admission.stats
                waves, max_wave = stats.waves, stats.max_wave_seen
                for connection in connections:
                    await connection.close()
                return batched, waves, max_wave

        batched, waves, max_wave = run(go)
        assert all(batched)
        assert waves == 1
        assert max_wave == 4

    def test_scalar_aggregate_over_the_wire(self):
        async def go():
            server = await start_loaded_server()
            async with server:
                connection = await repro.aio.connect(*server.address)
                cursor = await connection.execute(
                    "select count(*) from p where ra between 0.0 and 360.0"
                )
                row = cursor.fetchone()
                scalar = cursor.result.scalar()
                description = cursor.description
                await connection.close()
                return row, scalar, description

        row, scalar, description = run(go)
        assert row == (2_000.0,)
        assert scalar == 2_000.0
        assert description[0][0].startswith("count")


class TestPreparedStatements:
    def test_prepare_execute_roundtrip(self):
        async def go():
            server = await start_loaded_server()
            async with server:
                connection = await repro.aio.connect(*server.address)
                statement = await connection.prepare(SQL)
                meta = (statement.parameter_count, statement.paramstyle, statement.sql)
                result = await statement.execute((10.0, 20.0))
                many = await statement.executemany([(10.0, 12.0), (100.0, 103.0)])
                await connection.close()
                return meta, result, many

        meta, result, many = run(go)
        assert meta[0] == 2 and meta[1] == "qmark"
        assert sorted(result.columns["objid"].tolist()) == expected_objids(10.0, 20.0)
        assert [sorted(r.columns["objid"].tolist()) for r in many] == [
            expected_objids(10.0, 12.0),
            expected_objids(100.0, 103.0),
        ]

    def test_prepared_statements_survive_a_cache_generation_bump(self):
        async def go():
            server = await start_loaded_server()
            async with server:
                connection = await repro.aio.connect(*server.address)
                statement = await connection.prepare(SQL)
                before = await statement.execute((10.0, 20.0))
                # Invalidate every compiled plan server-side.
                await connection.admin.enable_adaptive(
                    "p", "ra", strategy="segmentation", model="apm"
                )
                after = await statement.execute((10.0, 20.0))
                await connection.close()
                return before, after

        before, after = run(go)
        assert sorted(before.columns["objid"].tolist()) == expected_objids(10.0, 20.0)
        assert sorted(after.columns["objid"].tolist()) == expected_objids(10.0, 20.0)

    def test_unknown_statement_id_raises(self):
        async def go():
            async with ReproServer(port=0) as server:
                reader, writer = await asyncio.open_connection(*server.address)
                write_frame(
                    writer,
                    {"type": "hello", "id": 1, "protocol": PROTOCOL_VERSION},
                )
                await writer.drain()
                await read_frame(reader)
                write_frame(
                    writer,
                    {"type": "execute", "id": 2, "statement": 404, "params": [1, 2]},
                )
                await writer.drain()
                reply = await read_frame(reader)
                writer.close()
                return reply

        reply = run(go)
        assert reply["error"] == "ProgrammingError"
        assert "404" in reply["message"]


class TestErrors:
    def test_engine_errors_rebuild_as_pep249_exceptions(self):
        async def go():
            server = await start_loaded_server()
            async with server:
                connection = await repro.aio.connect(*server.address)
                with pytest.raises(ProgrammingError):
                    await connection.execute("select objid from nope")
                # The connection survives an error frame.
                cursor = await connection.execute(SQL, (10.0, 20.0))
                count = cursor.rowcount
                await connection.close()
                return count

        assert run(go) == len(expected_objids(10.0, 20.0))

    def test_bad_binding_arity_raises_before_admission(self):
        async def go():
            server = await start_loaded_server()
            async with server:
                connection = await repro.aio.connect(*server.address)
                statement = await connection.prepare(SQL)
                with pytest.raises(ProgrammingError):
                    await statement.execute((10.0,))
                with pytest.raises(ProgrammingError):
                    await statement.executemany([(10.0, 20.0), (30.0,)])
                await connection.close()

        run(go)

    def test_unknown_frame_type_raises(self):
        async def go():
            async with ReproServer(port=0) as server:
                reader, writer = await asyncio.open_connection(*server.address)
                write_frame(
                    writer, {"type": "hello", "id": 1, "protocol": PROTOCOL_VERSION}
                )
                await writer.drain()
                await read_frame(reader)
                write_frame(writer, {"type": "teleport", "id": 2})
                await writer.drain()
                reply = await read_frame(reader)
                writer.close()
                return reply

        reply = run(go)
        assert reply["error"] == "ProgrammingError"
        assert "teleport" in reply["message"]

    def test_rollback_is_not_supported(self):
        async def go():
            async with ReproServer(port=0) as server:
                connection = await repro.aio.connect(*server.address)
                await connection.commit()  # a no-op, as in the sync facade
                with pytest.raises(NotSupportedError):
                    await connection.rollback()
                await connection.close()

        run(go)


class TestBackpressure:
    def test_overflow_error_reaches_the_client_as_operational_error(self):
        async def go():
            server = await start_loaded_server(
                batch_window_us=300_000.0, max_inflight=2,
                max_inflight_per_connection=8, overflow="error",
            )
            async with server:
                connection = await repro.aio.connect(*server.address)
                statement = await connection.prepare(SQL)
                outcomes = await asyncio.gather(
                    *(statement.execute((10.0 + i, 20.0 + i)) for i in range(3)),
                    return_exceptions=True,
                )
                rejected = server.admission.stats.rejected_overflow
                await connection.close()
                return outcomes, rejected

        outcomes, rejected = run(go)
        errors = [o for o in outcomes if isinstance(o, BaseException)]
        assert len(errors) == 1 and isinstance(errors[0], OperationalError)
        assert "admission queue full" in str(errors[0])
        assert rejected == 1
        assert len(outcomes) - len(errors) == 2  # the admitted two still answer


class TestAdmin:
    def test_admin_surface_over_the_wire(self):
        async def go():
            async with ReproServer(port=0, batch_window_us=100.0) as server:
                connection = await repro.aio.connect(*server.address)
                admin = connection.admin
                await admin.create_table("t", {"v": "float64"})
                names = await admin.table_names()
                await admin.bulk_load("t", {"v": [1.0, 2.0, 3.0]})
                await admin.insert("t", {"v": [4.0, 5.0]})
                await admin.delete("t", [0])
                cursor = await connection.execute(
                    "select v from t where v between 0.0 and 10.0"
                )
                rows = sorted(row[0] for row in cursor.fetchall())
                plan = await admin.explain("select v from t where v between 1.0 and 2.0")
                await admin.drop_table("t")
                with pytest.raises(ProgrammingError):
                    await connection.execute("select v from t where v between 0.0 and 1.0")
                await connection.close()
                return names, rows, plan

        names, rows, plan = run(go)
        assert names == ["t"]
        assert rows == [2.0, 3.0, 4.0, 5.0]
        assert isinstance(plan, str) and plan

    def test_cache_stats_sections_cross_the_wire(self):
        async def go():
            server = await start_loaded_server()
            async with server:
                connection = await repro.aio.connect(*server.address)
                await connection.executemany(
                    SQL, [(10.0, 12.0), (100.0, 103.0), (350.0, 351.0)]
                )
                stats = await connection.admin.cache_stats()
                await connection.close()
                return stats

        stats = run(go)
        assert set(stats) == {"batch", "levels", "total"}
        assert stats["batch"]["waves"] >= 1
        assert stats["batch"]["wave_size"]["max"] >= 3
        assert sum(stats["batch"]["wave_size_histogram"].values()) == stats["batch"]["waves"]

    def test_admission_stats_include_knobs_and_connections(self):
        async def go():
            server = await start_loaded_server(batch_window_us=400.0)
            async with server:
                connection = await repro.aio.connect(*server.address)
                await connection.execute(SQL, (10.0, 20.0))
                stats = await connection.admin.admission_stats()
                await connection.close()
                return stats

        stats = run(go)
        assert stats["admitted"] >= 1
        assert stats["waves"] >= 1
        assert stats["mean_wave"] >= 1.0
        assert stats["connections"] >= 1
        assert stats["knobs"]["batch_window_us"] == 400.0

    def test_unknown_admin_op_raises(self):
        async def go():
            async with ReproServer(port=0) as server:
                connection = await repro.aio.connect(*server.address)
                with pytest.raises(ProgrammingError):
                    await connection.admin._call("format_disk")
                await connection.close()

        run(go)


class TestLifecycle:
    def test_closed_connection_refuses_further_work(self):
        async def go():
            server = await start_loaded_server()
            async with server:
                connection = await repro.aio.connect(*server.address)
                cursor = await connection.execute(SQL, (10.0, 20.0))
                await connection.close()
                assert connection.closed
                assert cursor.closed  # cursors close with their connection
                with pytest.raises(InterfaceError):
                    connection.cursor()
                with pytest.raises(InterfaceError):
                    await connection.execute(SQL, (10.0, 20.0))

        run(go)

    def test_cursor_close_is_client_side_only(self):
        async def go():
            server = await start_loaded_server()
            async with server:
                connection = await repro.aio.connect(*server.address)
                cursor = await connection.execute(SQL, (10.0, 20.0))
                cursor.close()
                with pytest.raises(InterfaceError):
                    cursor.fetchall()
                other = await connection.execute(SQL, (10.0, 20.0))
                count = other.rowcount
                await connection.close()
                return count

        assert run(go) == len(expected_objids(10.0, 20.0))

    def test_server_stop_with_a_live_connection_does_not_hang(self):
        async def go():
            server = await start_loaded_server()
            connection = await repro.aio.connect(*server.address)
            await connection.execute(SQL, (10.0, 20.0))
            await server.stop()  # drops the client; must not deadlock
            with pytest.raises((OperationalError, InterfaceError, ConnectionError)):
                await connection.execute(SQL, (10.0, 20.0))
            await connection.close()

        run(go)

    def test_abrupt_client_disconnect_leaves_the_server_serving(self):
        async def go():
            server = await start_loaded_server()
            async with server:
                reader, writer = await asyncio.open_connection(*server.address)
                write_frame(
                    writer, {"type": "hello", "id": 1, "protocol": PROTOCOL_VERSION}
                )
                await writer.drain()
                await read_frame(reader)
                writer.close()  # vanish without a close frame
                connection = await repro.aio.connect(*server.address)
                cursor = await connection.execute(SQL, (10.0, 20.0))
                count = cursor.rowcount
                await connection.close()
                return count

        assert run(go) == len(expected_objids(10.0, 20.0))
