"""Server-side fault tolerance: member isolation, retry, deadlines, drain.

Satellite regression for the wave-as-one-unit failure mode: before the
``isolate=True`` engine pass, one malformed member failed its *entire* wave —
every co-batched healthy query of every other connection got the poison
member's error.  Now the poison member resolves with its own exception while
its wave-mates complete normally.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

import repro.aio
from repro.api.exceptions import Error, OperationalError
from repro.cluster import Router
from repro.engine.database import Database
from repro.fault import FaultInjector
from repro.server import ReproServer
from repro.server.admission import AdmissionController

SQL_T = "SELECT v FROM t WHERE v BETWEEN ? AND ?"
SQL_U = "SELECT w FROM u WHERE w BETWEEN ? AND ?"


def run(main):
    return asyncio.run(main())


def build_database(n_rows: int = 1_000, seed: int = 3) -> Database:
    rng = np.random.default_rng(seed)
    database = Database()
    database.create_table("t", {"v": "float64"})
    database.bulk_load("t", {"v": rng.uniform(0.0, 100.0, size=n_rows)})
    database.enable_adaptive("t", "v", strategy="segmentation")
    return database


class TestMemberIsolation:
    def test_engine_wave_isolates_a_poison_member(self):
        # The regression at its root: one stale statement (its table dropped
        # after preparing) among healthy wave-mates.  Un-isolated, the whole
        # wave raised; isolated, the poison slot carries its own exception.
        database = build_database()
        database.create_table("u", {"w": "float64"})
        database.bulk_load(
            "u", {"w": np.random.default_rng(5).uniform(0.0, 100.0, size=200)}
        )
        healthy = database.prepare_statement(SQL_T)
        poison = database.prepare_statement(SQL_U)
        database.drop_table("u")
        results = database.execute_wave(
            [
                (healthy, (10.0, 20.0)),
                (poison, (10.0, 20.0)),
                (healthy, (30.0, 40.0)),
            ],
            isolate=True,
        )
        assert len(results) == 3
        assert not isinstance(results[0], BaseException)
        assert isinstance(results[1], BaseException)
        assert not isinstance(results[2], BaseException)

    def test_one_malformed_member_does_not_fail_its_wave_mates(self):
        # End-to-end over sockets: the malformed member and healthy queries
        # share one admission window; only the malformed one errors.
        async def go():
            server = ReproServer(build_database(), port=0, batch_window_us=5_000.0)
            async with server:
                connection = await repro.aio.connect(*server.address)
                await connection.admin.create_table("u", {"w": "float64"})
                await connection.admin.bulk_load(
                    "u", {"w": np.linspace(0.0, 100.0, 50)}
                )
                healthy = await connection.prepare(SQL_T)
                poison = await connection.prepare(SQL_U)
                await connection.admin.drop_table("u")
                outcomes = await asyncio.gather(
                    healthy.execute((10.0, 20.0)),
                    poison.execute((10.0, 20.0)),
                    healthy.execute((30.0, 40.0)),
                    return_exceptions=True,
                )
                stats = await connection.admin.admission_stats()
                await connection.close()
            return outcomes, stats

        outcomes, stats = run(go)
        assert not isinstance(outcomes[0], BaseException)
        assert isinstance(outcomes[1], Error)
        assert not isinstance(outcomes[2], BaseException)
        assert stats["member_failures"] >= 1
        assert stats["completed"] >= 2


class TestRetryOnFailover:
    def test_a_crashed_wave_is_retried_on_a_sibling_replica(self):
        async def go():
            injector = FaultInjector(seed=7)
            injector.schedule("wave.execute", at=1, action="crash", replica=1)
            router = Router(
                build_database(), 2, quarantine_after=1, injector=injector
            )
            admission = AdmissionController(
                router,
                executor=None,
                batch_window_us=500.0,
                max_retries=2,
                retry_backoff_s=0.001,
            )
            await admission.start()
            try:

                async def one(prepared, low):
                    future = await admission.submit(0, prepared, (low, low + 10.0))
                    return await future

                prepared = router.prepare_statement(SQL_T)
                results = await asyncio.gather(
                    *(one(prepared, float(low)) for low in range(0, 60, 5))
                )
                return results, admission.stats, injector
            finally:
                await admission.stop()
                router.close()

        results, stats, injector = run(go)
        assert all(not isinstance(result, BaseException) for result in results)
        assert injector.fired("wave.execute") == 1
        assert stats.retries >= 1
        assert stats.completed == len(results)

    def test_retries_exhausted_fails_the_wave_with_transient_error(self):
        async def go():
            injector = FaultInjector(seed=7)
            # Every wave on every replica crashes: retries cannot save this.
            for replica in (0, 1):
                injector.schedule(
                    "wave.execute", at=1, action="crash", count=50, replica=replica
                )
            router = Router(
                build_database(), 2, quarantine_after=10, injector=injector
            )
            admission = AdmissionController(
                router,
                executor=None,
                batch_window_us=0.0,
                max_retries=1,
                retry_backoff_s=0.001,
            )
            await admission.start()
            try:
                prepared = router.prepare_statement(SQL_T)
                future = await admission.submit(0, prepared, (10.0, 20.0))
                with pytest.raises(OperationalError):
                    await future
                return admission.stats
            finally:
                await admission.stop()
                router.close()

        stats = run(go)
        assert stats.failed >= 1
        assert stats.retries >= 1


class TestWaveDeadline:
    def test_a_blown_deadline_quarantines_and_fails_over(self):
        async def go():
            injector = FaultInjector(seed=7)
            # Replica 0's first wave hangs well past the deadline; the wave
            # must be abandoned, the replica quarantined, the wave retried on
            # replica 1 — and the client still gets its rows.
            injector.schedule(
                "wave.execute", at=1, action="hang", delay_s=0.5, replica=0
            )
            router = Router(
                build_database(), 2, quarantine_after=1, injector=injector
            )
            admission = AdmissionController(
                router,
                executor=None,
                batch_window_us=500.0,
                wave_deadline_s=0.05,
                max_retries=2,
                retry_backoff_s=0.001,
                auto_rebuild=False,
            )
            await admission.start()
            try:

                async def one(prepared, low):
                    future = await admission.submit(0, prepared, (low, low + 10.0))
                    return await future

                prepared = router.prepare_statement(SQL_T)
                results = await asyncio.gather(
                    *(one(prepared, float(low)) for low in range(0, 40, 5))
                )
                health = router.router_stats()["health"]
                return results, admission.stats, health
            finally:
                await admission.stop()
                router.close()

        results, stats, health = run(go)
        assert all(not isinstance(result, BaseException) for result in results)
        assert stats.wave_timeouts >= 1
        assert health["timeouts"] >= 1
        assert health["quarantines"] >= 1


class TestGracefulDrain:
    def test_drain_completes_queued_waves_then_refuses_new_work(self):
        async def go():
            database = build_database()
            admission = AdmissionController(
                database,
                executor=None,
                batch_window_us=20_000.0,  # long window: requests queue up
            )
            await admission.start()
            try:
                prepared = database.prepare_statement(SQL_T)
                futures = [
                    await admission.submit(0, prepared, (float(low), low + 10.0))
                    for low in range(0, 40, 5)
                ]
                drained = await admission.drain(timeout=5.0)
                results = [future.result() for future in futures]
                with pytest.raises(OperationalError, match="draining"):
                    await admission.submit(0, prepared, (1.0, 2.0))
                return drained, results
            finally:
                await admission.stop()

        drained, results = run(go)
        assert drained is True
        assert len(results) == 8
        assert all(not isinstance(result, BaseException) for result in results)

    def test_server_stop_drains_inflight_waves(self):
        # Requests admitted before stop() still deliver their answers: the
        # listener closes first, the waves run to completion, then sockets go.
        async def go():
            server = ReproServer(
                build_database(), port=0, batch_window_us=10_000.0
            )
            async with server:
                connection = await repro.aio.connect(*server.address)
                statement = await connection.prepare(SQL_T)
                tasks = [
                    asyncio.ensure_future(statement.execute((float(low), low + 10.0)))
                    for low in range(0, 40, 5)
                ]
                await asyncio.sleep(0)  # let the frames reach the server
                outcomes = await asyncio.gather(*tasks, return_exceptions=True)
                await connection.close()
            return outcomes

        outcomes = run(go)
        assert all(not isinstance(outcome, BaseException) for outcome in outcomes)


class TestAdmissionExecutorlessDefaults:
    def test_single_engine_admission_still_isolates_members(self):
        # The non-router path also executes isolate=True: a poison member in
        # a plain single-engine wave resolves alone.
        async def go():
            database = build_database()
            database.create_table("u", {"w": "float64"})
            database.bulk_load("u", {"w": np.linspace(0.0, 100.0, 50)})
            healthy = database.prepare_statement(SQL_T)
            poison = database.prepare_statement(SQL_U)
            database.drop_table("u")
            admission = AdmissionController(
                database, executor=None, batch_window_us=5_000.0
            )
            await admission.start()
            try:
                futures = [
                    await admission.submit(0, healthy, (10.0, 20.0)),
                    await admission.submit(0, poison, (10.0, 20.0)),
                    await admission.submit(0, healthy, (30.0, 40.0)),
                ]
                outcomes = await asyncio.gather(*futures, return_exceptions=True)
                return outcomes, admission.stats
            finally:
                await admission.stop()

        outcomes, stats = run(go)
        assert not isinstance(outcomes[0], BaseException)
        assert isinstance(outcomes[1], BaseException)
        assert not isinstance(outcomes[2], BaseException)
        assert stats.member_failures == 1
