"""Property: concurrent clients through admission == serial in-process runs.

N async clients fire interleaved bound range selects at one server; every
query's answer must be permutation-equal to the same query run serially, one
at a time, against a fresh in-process database built from the same data —
with adaptive reorganization enabled on both sides, so wave-batched
piggy-backed adaptation and per-query adaptation both run.  Admission may
reorder and regroup queries arbitrarily; it must never change answers.

The suite drives its own event loops with ``asyncio.run`` (no pytest-asyncio
in the toolchain).

This file also pins the Fig 5–7 accounting fixture by content hash: the
server front-end must not perturb the simulation baselines it rides above.
"""

from __future__ import annotations

import asyncio
import hashlib
from pathlib import Path

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.aio
from repro.engine.database import Database
from repro.server import ReproServer
from repro.util.units import KB

SQL = "SELECT objid FROM p WHERE ra BETWEEN ? AND ?"
N_ROWS = 1_500
DOMAIN_HIGH = 360.0

seeds = st.integers(min_value=0, max_value=2**16)
client_counts = st.integers(min_value=2, max_value=4)
queries_per_client = st.integers(min_value=1, max_value=6)


def build_database(seed: int) -> Database:
    rng = np.random.default_rng(seed)
    database = Database()
    database.create_table("p", {"objid": "int64", "ra": "float64"})
    database.bulk_load(
        "p",
        {
            "objid": np.arange(N_ROWS, dtype=np.int64),
            "ra": rng.uniform(0.0, DOMAIN_HIGH, size=N_ROWS),
        },
    )
    database.enable_adaptive(
        "p", "ra", strategy="segmentation", model="apm", m_min=1 * KB, m_max=4 * KB
    )
    return database


def make_workloads(
    clients: int, per_client: int, seed: int
) -> list[list[tuple[float, float]]]:
    """Per-client bound lists: wide, narrow, empty and duplicate ranges."""
    rng = np.random.default_rng(seed)
    workloads: list[list[tuple[float, float]]] = []
    for _ in range(clients):
        bounds: list[tuple[float, float]] = []
        for _ in range(per_client):
            low = float(rng.uniform(0.0, DOMAIN_HIGH))
            kind = rng.integers(0, 4)
            if kind == 0:  # wide
                bounds.append((low, float(low + rng.uniform(0.0, DOMAIN_HIGH / 2))))
            elif kind == 1:  # narrow
                bounds.append((low, float(low + rng.uniform(0.0, 2.0))))
            elif kind == 2:  # empty
                bounds.append((low, low))
            else:  # duplicate an earlier range (same or another client)
                flattened = [b for workload in workloads for b in workload] + bounds
                bounds.append(
                    flattened[rng.integers(0, len(flattened))]
                    if flattened
                    else (low, low + 5.0)
                )
        workloads.append(bounds)
    return workloads


async def concurrent_answers(
    database: Database, workloads: list[list[tuple[float, float]]]
) -> list[list[list[int]]]:
    """Each client's per-query sorted objid lists, run concurrently."""

    async def client(address, bounds):
        connection = await repro.aio.connect(*address)
        statement = await connection.prepare(SQL)
        answers = []
        for low, high in bounds:
            result = await statement.execute((low, high))
            answers.append(sorted(result.columns.get("objid", np.array([])).tolist()))
        await connection.close()
        return answers

    async with ReproServer(database, port=0, batch_window_us=1_000.0) as server:
        return list(
            await asyncio.gather(
                *(client(server.address, bounds) for bounds in workloads)
            )
        )


def serial_answers(
    seed: int, workloads: list[list[tuple[float, float]]]
) -> list[list[list[int]]]:
    """The same queries, one at a time, on a fresh identical database."""
    database = build_database(seed)
    prepared = database.prepare_statement(SQL)
    answers: list[list[list[int]]] = []
    for bounds in workloads:
        rows = []
        for low, high in bounds:
            result = database.execute_prepared(prepared, (low, high))
            rows.append(sorted(np.asarray(result.columns["objid"]).tolist()))
        answers.append(rows)
    return answers


@given(seed=seeds, clients=client_counts, per_client=queries_per_client)
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_concurrent_clients_equal_serial_execution(seed, clients, per_client):
    workloads = make_workloads(clients, per_client, seed + 1)
    got = asyncio.run(concurrent_answers(build_database(seed), workloads))
    expected = serial_answers(seed, workloads)
    assert got == expected


def test_fig5_7_fixture_is_untouched():
    """The committed Fig 5–7 accounting fixture must survive this subsystem."""
    fixture = Path(__file__).resolve().parent.parent / "data" / "fig5_7_accounting_fixture.json"
    digest = hashlib.sha256(fixture.read_bytes()).hexdigest()
    assert digest == "9989a99ee8f25d5c5e7017f208316d705b5df4c9889cedf8f1c16cb61ec8c91b"
