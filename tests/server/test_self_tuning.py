"""Self-tuning over the wire: knobs / set_knobs / tuning_stats admin ops.

Same harness as the rest of the server suite: each test runs a real
:class:`ReproServer` on an ephemeral port inside its own ``asyncio.run``.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

import repro.aio
from repro.api.exceptions import ProgrammingError
from repro.engine.database import Database
from repro.server import ReproServer
from repro.util.units import KB

SQL = "SELECT objid FROM p WHERE ra BETWEEN ? AND ?"


def run(main):
    return asyncio.run(main())


def adaptive_database(n_rows: int = 4_000) -> Database:
    rng = np.random.default_rng(17)
    database = Database()
    database.create_table("p", {"objid": "int64", "ra": "float64"})
    database.bulk_load(
        "p",
        {
            "objid": np.arange(n_rows, dtype=np.int64),
            "ra": rng.uniform(0.0, 360.0, size=n_rows),
        },
    )
    database.enable_adaptive("p", "ra", model="apm", m_min=1 * KB, m_max=4 * KB)
    return database


class TestKnobOps:
    def test_knob_table_over_the_wire(self):
        async def go():
            async with ReproServer(adaptive_database(), port=0) as server:
                connection = await repro.aio.connect(*server.address)
                rows = await connection.admin.knobs()
                by_name = {row["name"]: row for row in rows}
                # Engine-layer and server-layer knobs in one table.
                assert by_name["apm_m_min"]["layer"] == "storage-model"
                assert by_name["apm_m_min"]["value"] == 1 * KB
                assert by_name["batch_window_us"]["layer"] == "server"
                assert {"default", "low", "high", "step"} <= set(by_name["max_wave"])
                await connection.close()

        run(go)

    def test_set_knobs_applies_live(self):
        async def go():
            database = adaptive_database()
            async with ReproServer(database, port=0) as server:
                connection = await repro.aio.connect(*server.address)
                applied = await connection.admin.set_knobs(
                    {"apm_m_min": 2 * KB, "batch_window_us": 0.0}
                )
                assert applied["apm_m_min"] == 2 * KB
                model = database.bpm.handles()[0].adaptive.model
                assert model.m_min == 2 * KB
                assert server.admission.batch_window_us == 0.0
                await connection.close()

        run(go)

    def test_invalid_set_knobs_rejected_without_side_effects(self):
        async def go():
            database = adaptive_database()
            async with ReproServer(database, port=0) as server:
                connection = await repro.aio.connect(*server.address)
                with pytest.raises(ProgrammingError, match="apm_m_max"):
                    # Violates the m_min < m_max constraint.
                    await connection.admin.set_knobs({"apm_m_min": 8 * KB})
                with pytest.raises(ProgrammingError):
                    await connection.admin.set_knobs({"no_such_knob": 1.0})
                model = database.bpm.handles()[0].adaptive.model
                assert model.m_min == 1 * KB  # untouched
                await connection.close()

        run(go)

    def test_tuning_stats_without_controller(self):
        async def go():
            async with ReproServer(adaptive_database(), port=0) as server:
                connection = await repro.aio.connect(*server.address)
                stats = await connection.admin.tuning_stats()
                assert stats["enabled"] is False
                assert stats["state"] is None
                assert any(
                    row["name"] == "apm_m_min" for row in stats["knob_table"]
                )
                await connection.close()

        run(go)


class TestSelfTuningServer:
    def test_pulse_feeds_controller_and_answers_stay_correct(self):
        async def go():
            database = adaptive_database()
            async with ReproServer(
                database, port=0, self_tuning=True,
                tuning={"pulse_s": 0.05, "window": 8},
            ) as server:
                connection = await repro.aio.connect(*server.address)
                cursor = connection.cursor()
                rng = np.random.default_rng(3)
                for _ in range(40):
                    low = float(rng.uniform(0.0, 300.0))
                    await cursor.execute(SQL, (low, low + 10.0))
                    got = sorted(value for (value,) in cursor.fetchall())
                    assert got == _expected(low, low + 10.0)
                await asyncio.sleep(0.25)  # a few pulses
                stats = await connection.admin.tuning_stats()
                assert stats["enabled"] is True
                assert stats["state"] in ("idle", "trial")
                assert stats["counters"]["observed_queries"] >= 40
                assert stats["counters"]["windows"] >= 1
                assert stats["drift"]["checks"] >= 1
                assert server._tuning_errors == 0
                await connection.close()

        run(go)

    def test_controller_lazy_until_first_adaptive_stats(self):
        async def go():
            # No adaptive column at start: the pulse idles without a
            # controller until there is a knob surface *and* observations.
            async with ReproServer(
                port=0, self_tuning=True, tuning={"pulse_s": 0.02},
            ) as server:
                await asyncio.sleep(0.1)
                assert server.tuning_controller is None
                assert server._tuning_errors == 0

        run(go)


def _expected(low: float, high: float, n_rows: int = 4_000) -> list[int]:
    rng = np.random.default_rng(17)  # mirrors adaptive_database()
    objid = np.arange(n_rows, dtype=np.int64)
    ra = rng.uniform(0.0, 360.0, size=n_rows)
    return sorted(objid[(ra >= low) & (ra <= high)].tolist())
