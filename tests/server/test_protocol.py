"""The length-prefixed JSON wire protocol: framing, limits, EOF semantics."""

from __future__ import annotations

import asyncio
import struct

import numpy as np
import pytest

from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    read_frame,
)


def _read(data: bytes):
    """Drive ``read_frame`` over an in-memory stream fed with ``data``."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(go())


class TestEncodeDecode:
    def test_roundtrip(self):
        payload = {"type": "execute", "id": 7, "sql": "select 1", "params": [1.0, 2.5]}
        frame = encode_frame(payload)
        length = struct.unpack(">I", frame[:4])[0]
        assert length == len(frame) - 4
        assert decode_frame(frame[4:]) == payload

    def test_numpy_scalars_coerce_to_json(self):
        payload = {
            "type": "result",
            "id": np.int64(3),
            "value": np.float64(1.5),
        }
        decoded = decode_frame(encode_frame(payload)[4:])
        assert decoded == {"type": "result", "id": 3, "value": 1.5}
        assert isinstance(decoded["id"], int)

    def test_unserializable_payload_raises(self):
        with pytest.raises(TypeError):
            encode_frame({"type": "x", "value": object()})

    def test_invalid_json_body_raises(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_frame(b"{nope")

    def test_non_object_payload_raises(self):
        with pytest.raises(ProtocolError, match="'type' field"):
            decode_frame(b"[1,2,3]")

    def test_object_without_type_raises(self):
        with pytest.raises(ProtocolError, match="'type' field"):
            decode_frame(b'{"id": 1}')

    def test_protocol_version_is_pinned(self):
        # Bumping the version is an intentional wire break; this test makes
        # the bump show up in a diff somewhere other than the module itself.
        assert PROTOCOL_VERSION == 1


class TestReadFrame:
    def test_reads_one_frame(self):
        frame = _read(encode_frame({"type": "hello", "id": 1}))
        assert frame == {"type": "hello", "id": 1}

    def test_clean_eof_returns_none(self):
        assert _read(b"") is None

    def test_eof_inside_header_raises(self):
        with pytest.raises(ProtocolError, match="frame header"):
            _read(b"\x00\x00")

    def test_eof_inside_body_raises(self):
        whole = encode_frame({"type": "hello"})
        with pytest.raises(ProtocolError, match="frame body"):
            _read(whole[:-2])

    def test_oversize_declared_length_raises_before_reading_body(self):
        header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            _read(header)

    def test_frames_read_back_to_back(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(
                encode_frame({"type": "a"}) + encode_frame({"type": "b"})
            )
            reader.feed_eof()
            return [
                await read_frame(reader),
                await read_frame(reader),
                await read_frame(reader),
            ]

        first, second, third = asyncio.run(go())
        assert (first["type"], second["type"]) == ("a", "b")
        assert third is None
