"""Multi-replica server tests: ``--replicas N`` over real sockets.

A routed server must look exactly like a single-engine server from the
client's side — same answers, same DB-API surface — while DDL fans out to
every replica, admission stats grow a per-replica breakdown, and the
``router_stats`` admin op exposes the fleet.
"""

from __future__ import annotations

import asyncio

import numpy as np

import repro.aio
from repro.server import ReproServer, serve

SQL = "select objid from p where ra between ? and ?"
N_ROWS = 2_000


def run(main):
    return asyncio.run(main())


async def start_routed_server(replicas: int = 2, **knobs) -> ReproServer:
    knobs.setdefault("batch_window_us", 2_000.0)
    server = await serve(port=0, replicas=replicas, **knobs)
    rng = np.random.default_rng(17)
    connection = await repro.aio.connect(*server.address)
    await connection.admin.create_table("p", {"objid": "int64", "ra": "float64"})
    await connection.admin.bulk_load(
        "p",
        {
            "objid": np.arange(N_ROWS, dtype=np.int64),
            "ra": rng.uniform(0.0, 360.0, size=N_ROWS),
        },
    )
    await connection.admin.enable_adaptive(
        "p", "ra", strategy="segmentation", model="apm",
        m_min=1_024, m_max=4_096,
    )
    await connection.close()
    return server


def expected_objids(low: float, high: float) -> list[int]:
    rng = np.random.default_rng(17)
    objid = np.arange(N_ROWS, dtype=np.int64)
    ra = rng.uniform(0.0, 360.0, size=N_ROWS)
    return sorted(objid[(ra >= low) & (ra <= high)].tolist())


class TestRoutedCorrectness:
    def test_prepared_queries_answer_identically_to_numpy(self):
        async def go():
            async with await start_routed_server(replicas=3) as server:
                connection = await repro.aio.connect(*server.address)
                statement = await connection.prepare(SQL)
                rows = {}
                for low, high in [(10.0, 40.0), (200.0, 230.0), (350.0, 360.0)]:
                    result = await statement.execute((low, high))
                    rows[(low, high)] = sorted(result.columns["objid"].tolist())
                await connection.close()
                return rows

        rows = run(go)
        for (low, high), got in rows.items():
            assert got == expected_objids(low, high)

    def test_many_interleaved_queries_spread_over_replicas(self):
        async def go():
            async with await start_routed_server(replicas=2) as server:
                connection = await repro.aio.connect(*server.address)
                statement = await connection.prepare(SQL)
                checks = []
                for index in range(40):
                    mode = (index % 2) * 180.0
                    low, high = mode + 10.0, mode + 30.0
                    result = await statement.execute((low, high))
                    checks.append(
                        sorted(result.columns["objid"].tolist())
                        == expected_objids(low, high)
                    )
                stats = await connection.admin.router_stats()
                await connection.close()
                return checks, stats

        checks, stats = run(go)
        assert all(checks)
        assert stats["routing"]["routed"] >= 40
        served = [replica["queries_served"] for replica in stats["replicas"]]
        assert sum(served) >= 40

    def test_literal_statements_work_through_the_router(self):
        async def go():
            async with await start_routed_server(replicas=2) as server:
                connection = await repro.aio.connect(*server.address)
                cursor = connection.cursor()
                await cursor.execute("select objid from p where ra between 5 and 25")
                rows = cursor.fetchall()
                await connection.close()
                return sorted(row[0] for row in rows)

        assert run(go) == expected_objids(5.0, 25.0)


class TestFanOut:
    def test_ddl_and_loads_reach_every_replica(self):
        async def go():
            async with await start_routed_server(replicas=3) as server:
                router = server.router
                tables = [
                    replica.database.table_names() for replica in router.replicas
                ]
                row_counts = [
                    len(replica.database.catalog.column("p", "objid").bind(0).tail)
                    for replica in router.replicas
                ]
                adaptive = [
                    replica.database.adaptive_handle("p", "ra") is not None
                    for replica in router.replicas
                ]
                return tables, row_counts, adaptive

        tables, row_counts, adaptive = run(go)
        assert tables == [["p"]] * 3
        assert row_counts == [N_ROWS] * 3
        assert adaptive == [True] * 3

    def test_drop_table_fans_out(self):
        async def go():
            async with await start_routed_server(replicas=2) as server:
                connection = await repro.aio.connect(*server.address)
                await connection.admin.drop_table("p")
                names = await connection.admin.table_names()
                per_replica = [
                    replica.database.table_names()
                    for replica in server.router.replicas
                ]
                await connection.close()
                return names, per_replica

        names, per_replica = run(go)
        assert names == []
        assert per_replica == [[], []]


class TestAdminSurfaces:
    def test_router_stats_exposes_fleet_and_queue_depths(self):
        async def go():
            async with await start_routed_server(replicas=2) as server:
                connection = await repro.aio.connect(*server.address)
                statement = await connection.prepare(SQL)
                await statement.execute((10.0, 20.0))
                stats = await connection.admin.router_stats()
                await connection.close()
                return stats

        stats = run(go)
        assert len(stats["replicas"]) == 2
        for replica in stats["replicas"]:
            assert "queue_depth" in replica
            assert "columns" in replica
        assert "hot_query_threshold" in stats["routing"]
        assert "ewma_alpha" in stats["cost_model"]

    def test_single_engine_server_reports_router_absence(self):
        async def go():
            async with ReproServer(port=0) as server:
                connection = await repro.aio.connect(*server.address)
                stats = await connection.admin.router_stats()
                await connection.close()
                return stats

        stats = run(go)
        assert stats["replicas"] == 1
        assert stats["routing"] is None
        assert "--replicas" in stats["note"]

    def test_admission_stats_gain_per_replica_breakdown(self):
        async def go():
            async with await start_routed_server(replicas=2) as server:
                connection = await repro.aio.connect(*server.address)
                statement = await connection.prepare(SQL)
                for _ in range(8):
                    await statement.execute((100.0, 130.0))
                stats = await connection.admin.admission_stats()
                await connection.close()
                return stats

        stats = run(go)
        per_replica = stats["per_replica"]
        assert len(per_replica) == 2
        assert sum(shard["members"] for shard in per_replica) >= 8
        for shard in per_replica:
            assert set(shard) >= {"waves", "members", "mean_wave", "pending"}

    def test_cache_stats_are_merged_across_replicas(self):
        async def go():
            async with await start_routed_server(replicas=2) as server:
                connection = await repro.aio.connect(*server.address)
                statement = await connection.prepare(SQL)
                await statement.execute((10.0, 20.0))
                stats = await connection.admin.cache_stats()
                await connection.close()
                return stats

        stats = run(go)
        assert len(stats["replicas"]) == 2
        assert stats["total"]["hits"] + stats["total"]["misses"] > 0


class TestKnobs:
    def test_hello_reports_replica_count(self):
        async def go():
            async with await start_routed_server(replicas=2) as server:
                connection = await repro.aio.connect(*server.address)
                info = dict(connection.server_info)
                await connection.close()
                return info

        info = run(go)
        assert info["knobs"]["replicas"] == 2
