"""Connection lifecycle, the admin handle, and the PEP 249 module surface."""

from __future__ import annotations

import numpy as np
import pytest

import repro
import repro.api as api


class TestModuleSurface:
    def test_pep249_module_attributes(self):
        assert api.apilevel == "2.0"
        assert api.threadsafety == 1
        assert api.paramstyle == "qmark"

    def test_exception_hierarchy(self):
        assert issubclass(api.InterfaceError, api.Error)
        assert issubclass(api.DatabaseError, api.Error)
        for exc in (
            api.DataError,
            api.OperationalError,
            api.IntegrityError,
            api.InternalError,
            api.ProgrammingError,
            api.NotSupportedError,
        ):
            assert issubclass(exc, api.DatabaseError)

    def test_top_level_reexports(self):
        assert repro.connect is api.connect
        assert repro.ProgrammingError is api.ProgrammingError
        assert repro.apilevel == api.apilevel
        # The full PEP 249 surface is reachable from the top-level module too.
        for name in ("Warning", "Error", "InterfaceError", "DatabaseError",
                     "DataError", "OperationalError", "IntegrityError",
                     "InternalError", "ProgrammingError", "NotSupportedError"):
            assert getattr(repro, name) is getattr(api, name)


class TestConnectionLifecycle:
    def test_context_manager_closes(self):
        with repro.connect() as conn:
            assert not conn.closed
        assert conn.closed

    def test_close_is_idempotent_but_use_is_not(self):
        conn = repro.connect()
        conn.close()
        conn.close()  # PEP 249: closing twice is fine
        with pytest.raises(api.InterfaceError):
            conn.cursor()
        with pytest.raises(api.InterfaceError):
            conn.prepare("SELECT objid FROM p WHERE ra < ?")
        with pytest.raises(api.InterfaceError):
            conn.commit()
        with pytest.raises(api.InterfaceError):
            conn.admin.table_names()

    def test_cursor_on_closed_connection_is_unusable(self, connection):
        cursor = connection.cursor()
        connection.close()
        with pytest.raises(api.InterfaceError):
            cursor.execute("SELECT objid FROM p WHERE ra < 1.0")

    def test_close_closes_handed_out_cursors(self, connection):
        explicit = connection.cursor()
        shorthand = connection.execute(
            "SELECT objid FROM p WHERE ra BETWEEN 1.0 AND 2.0"
        )
        many = connection.executemany(
            "SELECT objid FROM p WHERE ra BETWEEN ? AND ?", [(1.0, 2.0), (3.0, 4.0)]
        )
        assert shorthand.results  # holding result sets before the close
        connection.close()
        for cursor in (explicit, shorthand, many):
            assert cursor.closed
        # The convenience cursors released their result sets — close() really
        # ran on them, they are not merely flagged closed via the connection.
        assert shorthand.results == []
        assert many.results == []
        with pytest.raises(api.InterfaceError):
            shorthand.fetchall()

    def test_commit_noop_rollback_unsupported(self, connection):
        connection.commit()
        with pytest.raises(api.NotSupportedError):
            connection.rollback()

    def test_connect_wraps_existing_engine(self, connection, ra_values):
        # Two connections over one engine see the same self-organizing state.
        other = repro.connect(connection.database)
        rows = other.execute("SELECT objid FROM p WHERE ra BETWEEN ? AND ?", (0.0, 360.0))
        assert rows.rowcount == ra_values.size
        other.close()
        assert not connection.closed


class TestAdmin:
    def test_ddl_and_data_roundtrip(self):
        with repro.connect() as conn:
            conn.admin.create_table("t", {"a": "int64", "b": "float64"})
            assert conn.admin.table_names() == ["t"]
            conn.admin.bulk_load(
                "t", {"a": np.arange(4, dtype=np.int64), "b": np.ones(4)}
            )
            conn.admin.insert("t", {"a": np.array([9]), "b": np.array([2.0])})
            cursor = conn.execute("SELECT a FROM t WHERE b >= ?", (0.0,))
            assert cursor.rowcount == 5
            conn.admin.delete("t", np.array([0]))
            cursor = conn.execute("SELECT a FROM t WHERE b >= ?", (0.0,))
            assert cursor.rowcount == 4
            conn.admin.drop_table("t")
            assert conn.admin.table_names() == []

    def test_errors_are_programming_errors(self, connection):
        with pytest.raises(api.ProgrammingError):
            connection.admin.create_table("p", {"x": "int64"})  # already exists
        with pytest.raises(api.ProgrammingError):
            connection.admin.enable_adaptive("p", "nope")
        with pytest.raises(api.ProgrammingError):
            connection.admin.adaptive_handle("p", "ra")  # not adaptive yet

    def test_adaptive_controls(self, connection):
        handle = connection.admin.enable_adaptive(
            "p", "ra", strategy="segmentation", model="apm"
        )
        assert handle is connection.admin.adaptive_handle("p", "ra")
        connection.admin.disable_adaptive("p", "ra")
        with pytest.raises(api.ProgrammingError):
            connection.admin.adaptive_handle("p", "ra")

    def test_explain_and_stats(self, connection):
        plan = connection.admin.explain("SELECT objid FROM p WHERE ra < 10")
        assert plan.startswith("function user.")
        stats = connection.admin.cache_stats()
        assert stats["total"]["capacity"] == 128

    def test_plan_cache_stats_is_a_deprecated_alias(self, connection):
        with pytest.warns(DeprecationWarning, match="cache_stats"):
            stats = connection.admin.plan_cache_stats()
        assert stats == connection.admin.cache_stats()

    def test_syntax_error_maps_to_programming_error(self, connection):
        with pytest.raises(api.ProgrammingError):
            connection.admin.explain("SELEKT objid FROM p")


class TestAdminCacheStats:
    def test_cache_stats_surface(self, connection):
        cursor = connection.cursor()
        cursor.execute("SELECT objid FROM p WHERE ra BETWEEN 1.0 AND 2.0")
        cursor.execute("SELECT objid FROM p WHERE ra BETWEEN 1.0 AND 2.0")
        cursor.execute("SELECT objid FROM p WHERE ra BETWEEN ? AND ?", (3.0, 4.0))
        stats = connection.admin.cache_stats()
        assert set(stats) == {"batch", "levels", "total"}
        assert stats["levels"]["exact"]["hits"] == 1
        assert stats["levels"]["prepared"]["entries"] == 1
        assert stats["total"]["size"] == sum(
            level["entries"] for level in stats["levels"].values()
        )

    def test_cache_stats_batch_section(self, connection):
        before = connection.admin.cache_stats()["batch"]
        assert before["waves"] == 0 and before["batched_queries"] == 0
        cursor = connection.cursor()
        cursor.executemany(
            "SELECT objid FROM p WHERE ra BETWEEN ? AND ?",
            [(1.0, 2.0), (5.0, 6.0), (9.0, 10.0)],
        )
        cursor.executemany(
            "SELECT count(*) FROM p WHERE ra BETWEEN ? AND ?",  # aggregates don't batch
            [(1.0, 2.0), (5.0, 6.0)],
        )
        stats = connection.admin.cache_stats()["batch"]
        assert stats["waves"] == 1
        assert stats["batched_queries"] == 3
        assert stats["fallback_queries"] == 2  # the aggregate members
        assert stats["wave_size"] == {"min": 3, "max": 3, "mean": 3.0}
        assert stats["wave_size_histogram"]["2-4"] == 1

    def test_cache_stats_requires_open_connection(self, connection):
        connection.close()
        with pytest.raises(api.InterfaceError):
            connection.admin.cache_stats()
