"""Prepared statements: identical results, zero-parse profiles, safe invalidation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
import repro.api as api
from tests.api.conftest import brute_oids


class TestPreparedExecution:
    @settings(max_examples=40, deadline=None)
    @given(
        low=st.floats(min_value=0.0, max_value=350.0, allow_nan=False),
        span=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    )
    def test_property_identical_to_literal_path(self, low, span):
        # Module-scoped handles (hypothesis reuses the function body): one
        # shared engine keeps the test fast and exercises plan reuse.
        connection, ra_values = _shared_connection()
        high = low + span
        prepared = connection.prepare("SELECT objid FROM p WHERE ra BETWEEN ? AND ?")
        bound = prepared.execute((low, high))
        literal = connection.database.execute(
            f"SELECT objid FROM p WHERE ra BETWEEN {low!r} AND {high!r}"
        )
        assert sorted(bound.column("objid")) == sorted(literal.column("objid"))
        assert bound.cache_level == "prepared"

    def test_zero_parse_and_mask_time_on_profile(self, connection):
        prepared = connection.prepare("SELECT objid FROM p WHERE ra BETWEEN ? AND ?")
        result = prepared.execute((10.0, 20.0))
        assert result.cache_level == "prepared"
        assert result.profile is not None
        # Parse covers both parsing and literal masking in the profiler; the
        # prepared path must skip them entirely.
        assert result.profile.parse_seconds == 0.0
        assert result.profile.optimize_seconds == 0.0
        assert result.profile.compile_seconds == 0.0
        assert not result.profile.cold
        assert result.profile.execute_seconds > 0.0

    def test_prepared_shares_plan_with_literal_shape(self, connection):
        connection.database.execute("SELECT objid FROM p WHERE ra BETWEEN 1.0 AND 2.0")
        misses_before = connection.database.plan_cache.misses
        lowered_before = connection.database.plan_cache.stats.size
        prepared = connection.prepare("SELECT objid FROM p WHERE ra BETWEEN ? AND ?")
        # The placeholder shape equals the lifted literal shape: nothing new
        # was compiled, only the prepared entry itself was added.
        assert connection.database.plan_cache.stats.size == lowered_before + 1
        assert prepared.execute((1.0, 2.0)).row_count == connection.database.execute(
            "SELECT objid FROM p WHERE ra BETWEEN 1.0 AND 2.0"
        ).row_count
        assert connection.database.plan_cache.misses >= misses_before

    def test_named_and_positional_styles(self, connection, ra_values):
        positional = connection.prepare("SELECT objid FROM p WHERE ra BETWEEN ? AND ?")
        named = connection.prepare("SELECT objid FROM p WHERE ra BETWEEN :lo AND :hi")
        assert positional.paramstyle == "qmark" and positional.parameter_count == 2
        assert named.paramstyle == "named" and named.parameter_count == 2
        a = positional.execute((50.0, 60.0))
        b = named.execute({"lo": 50.0, "hi": 60.0})
        assert sorted(a.column("objid")) == sorted(b.column("objid"))
        assert sorted(a.column("objid")) == brute_oids(ra_values, 50.0, 60.0)

    def test_repeated_named_placeholder_binds_every_position(self, connection, ra_values):
        prepared = connection.prepare("SELECT objid FROM p WHERE ra >= :x AND ra <= :x")
        assert prepared.parameter_count == 2  # two positions, one name
        result = prepared.execute({"x": float(ra_values[0])})
        assert result.row_count >= 1

    def test_mixed_placeholder_and_literal(self, connection, ra_values):
        prepared = connection.prepare("SELECT objid FROM p WHERE ra BETWEEN ? AND 20.0")
        assert prepared.parameter_count == 1
        result = prepared.execute((10.0,))
        assert sorted(result.column("objid")) == brute_oids(ra_values, 10.0, 20.0)
        with pytest.raises(api.ProgrammingError):
            prepared.execute((30.0,))  # bound low above the baked high

    def test_aggregate_prepared(self, connection, ra_values):
        prepared = connection.prepare("SELECT count(*) FROM p WHERE ra BETWEEN ? AND ?")
        result = prepared.execute((0.0, 180.0))
        assert result.scalar("count(*)") == len(brute_oids(ra_values, 0.0, 180.0))


class TestBindingValidation:
    @pytest.fixture
    def prepared(self, connection):
        return connection.prepare("SELECT objid FROM p WHERE ra BETWEEN ? AND ?")

    def test_high_below_low_rejected_at_bind_time(self, prepared):
        with pytest.raises(api.ProgrammingError, match="high >= low"):
            prepared.execute((20.0, 10.0))

    def test_wrong_arity(self, prepared):
        with pytest.raises(api.ProgrammingError, match="takes 2 parameter"):
            prepared.execute((1.0,))
        with pytest.raises(api.ProgrammingError, match="takes 2 parameter"):
            prepared.execute((1.0, 2.0, 3.0))

    def test_positional_statement_rejects_mapping(self, prepared):
        with pytest.raises(api.ProgrammingError, match="positional"):
            prepared.execute({"lo": 1.0, "hi": 2.0})

    def test_named_statement_rejects_sequence_and_strangers(self, connection):
        named = connection.prepare("SELECT objid FROM p WHERE ra BETWEEN :lo AND :hi")
        with pytest.raises(api.ProgrammingError, match="named"):
            named.execute((1.0, 2.0))
        with pytest.raises(api.ProgrammingError, match="missing"):
            named.execute({"lo": 1.0})
        with pytest.raises(api.ProgrammingError, match="unknown"):
            named.execute({"lo": 1.0, "hi": 2.0, "typo": 3.0})

    def test_mixing_styles_rejected_at_prepare_time(self, connection):
        with pytest.raises(api.ProgrammingError, match="mix"):
            connection.prepare("SELECT objid FROM p WHERE ra BETWEEN ? AND :hi")

    def test_nan_rejected_inf_accepted(self, prepared, connection, ra_values):
        with pytest.raises(api.ProgrammingError, match="NaN"):
            prepared.execute((float("nan"), 1.0))
        with pytest.raises(api.ProgrammingError, match="NaN"):
            prepared.execute((1.0, float("nan")))
        result = prepared.execute((float("-inf"), float("inf")))
        assert result.row_count == ra_values.size

    def test_non_numeric_rejected(self, prepared):
        for bad in ("10", None, [1.0], object(), True):
            with pytest.raises(api.ProgrammingError, match="numeric"):
                prepared.execute((bad, 20.0))

    def test_numpy_scalars_accepted(self, prepared, ra_values):
        result = prepared.execute((np.float64(10.0), np.int32(20)))
        assert sorted(result.column("objid")) == brute_oids(ra_values, 10.0, 20.0)

    def test_placeholders_rejected_on_literal_path(self, connection):
        with pytest.raises(api.ProgrammingError, match="prepared"):
            connection.cursor().execute("SELECT objid FROM p WHERE ra BETWEEN ? AND ?")


class TestInvalidation:
    def test_reused_across_enable_adaptive_re_lowers(self, connection, ra_values):
        prepared = connection.prepare("SELECT objid FROM p WHERE ra BETWEEN ? AND ?")
        before = prepared.execute((100.0, 110.0))
        plan_before = prepared.plan_text
        assert "bpm.newIterator" not in plan_before

        connection.admin.enable_adaptive("p", "ra", strategy="segmentation", model="apm")
        after = prepared.execute((100.0, 110.0))
        # The handle re-lowered against the segment optimizer: same rows, new plan.
        assert sorted(after.column("objid")) == sorted(before.column("objid"))
        assert sorted(after.column("objid")) == brute_oids(ra_values, 100.0, 110.0)
        assert "bpm.newIterator" in prepared.plan_text
        assert after.cache_level == "prepared"

        connection.admin.disable_adaptive("p", "ra")
        reverted = prepared.execute((100.0, 110.0))
        assert sorted(reverted.column("objid")) == sorted(before.column("objid"))
        assert "bpm.newIterator" not in prepared.plan_text

    def test_generation_advances_on_every_clear(self, connection):
        generation = connection.database.plan_cache.generation
        connection.admin.create_table("q", {"x": "int64"})
        assert connection.database.plan_cache.generation == generation + 1

    def test_stale_engine_handle_is_refreshed_internally(self, connection):
        # Engine-level: even without the client-side refresh, execute_prepared
        # must not run a stale CompiledPlan.
        database = connection.database
        prepared = database.prepare_statement("SELECT objid FROM p WHERE ra BETWEEN ? AND ?")
        database.enable_adaptive("p", "ra", strategy="segmentation", model="apm")
        result = database.execute_prepared(prepared, (10.0, 20.0))
        assert "bpm.newIterator" in result.plan_text


_SHARED: dict[str, object] = {}


def _shared_connection():
    """One lazily-built connection for the hypothesis property test."""
    if not _SHARED:
        rng = np.random.default_rng(71)
        ra = rng.uniform(0.0, 360.0, size=5_000)
        conn = repro.connect()
        conn.admin.create_table("p", {"objid": "int64", "ra": "float64"})
        conn.admin.bulk_load(
            "p", {"objid": np.arange(ra.size, dtype=np.int64), "ra": ra}
        )
        _SHARED["connection"] = conn
        _SHARED["ra"] = ra
    return _SHARED["connection"], _SHARED["ra"]


class TestResultMetadata:
    def test_numpy_array_accepted_as_positional_parameters(self, connection, ra_values):
        prepared = connection.prepare("SELECT objid FROM p WHERE ra BETWEEN ? AND ?")
        result = prepared.execute(np.array([10.0, 20.0]))
        assert sorted(result.column("objid")) == brute_oids(ra_values, 10.0, 20.0)

    def test_bound_values_recorded_on_result_and_history(self, connection):
        prepared = connection.prepare("SELECT objid FROM p WHERE ra BETWEEN ? AND ?")
        result = prepared.execute((33.0, 34.5))
        assert result.parameters == (33.0, 34.5)
        assert connection.database.query_history[-1].parameters == (33.0, 34.5)

    def test_bound_values_recorded_on_batched_results(self, connection):
        results = connection.prepare(
            "SELECT objid FROM p WHERE ra BETWEEN ? AND ?"
        ).executemany([(10.0, 20.0), (15.0, 25.0)])
        assert [r.batched for r in results] == [True, True]
        assert [r.parameters for r in results] == [(10.0, 20.0), (15.0, 25.0)]
