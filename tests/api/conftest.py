"""Fixtures for the DB-API client tests."""

from __future__ import annotations

import numpy as np
import pytest

import repro


@pytest.fixture
def ra_values() -> np.ndarray:
    rng = np.random.default_rng(71)
    return rng.uniform(0.0, 360.0, size=5_000)


@pytest.fixture
def connection(ra_values: np.ndarray) -> repro.Connection:
    """An open connection over a loaded two-column table ``p``."""
    conn = repro.connect()
    conn.admin.create_table("p", {"objid": "int64", "ra": "float64"})
    conn.admin.bulk_load(
        "p",
        {"objid": np.arange(ra_values.size, dtype=np.int64), "ra": ra_values},
    )
    yield conn
    conn.close()


def brute_oids(ra_values: np.ndarray, low: float, high: float) -> list[int]:
    """Reference result of ``SELECT objid ... WHERE ra BETWEEN low AND high``."""
    return sorted(np.flatnonzero((ra_values >= low) & (ra_values <= high)).tolist())
