"""Cursor semantics: execute, fetch, description, executemany batching."""

from __future__ import annotations

import numpy as np
import pytest

import repro.api as api
from tests.api.conftest import brute_oids


class TestExecuteAndFetch:
    def test_literal_and_bound_paths_agree(self, connection, ra_values):
        cursor = connection.cursor()
        cursor.execute("SELECT objid FROM p WHERE ra BETWEEN 100.0 AND 120.0")
        literal_rows = cursor.fetchall()
        cursor.execute("SELECT objid FROM p WHERE ra BETWEEN ? AND ?", (100.0, 120.0))
        bound_rows = cursor.fetchall()
        assert sorted(literal_rows) == sorted(bound_rows)
        assert sorted(row[0] for row in bound_rows) == brute_oids(ra_values, 100.0, 120.0)

    def test_execute_returns_cursor_for_chaining(self, connection):
        rows = connection.cursor().execute(
            "SELECT objid FROM p WHERE ra BETWEEN ? AND ?", (0.0, 360.0)
        ).fetchmany(3)
        assert len(rows) == 3

    def test_fetchone_exhaustion_and_iteration(self, connection):
        cursor = connection.execute(
            "SELECT objid FROM p WHERE ra BETWEEN ? AND ?", (100.0, 101.0)
        )
        count = cursor.rowcount
        seen = 0
        while cursor.fetchone() is not None:
            seen += 1
        assert seen == count
        assert cursor.fetchone() is None

        cursor.execute("SELECT objid FROM p WHERE ra BETWEEN ? AND ?", (100.0, 101.0))
        assert len(list(cursor)) == count

    def test_fetchmany_uses_arraysize(self, connection):
        cursor = connection.execute(
            "SELECT objid FROM p WHERE ra BETWEEN ? AND ?", (0.0, 360.0)
        )
        assert cursor.arraysize == 1
        assert len(cursor.fetchmany()) == 1
        cursor.arraysize = 5
        assert len(cursor.fetchmany()) == 5
        assert len(cursor.fetchmany(2)) == 2

    def test_description_and_rowcount(self, connection, ra_values):
        cursor = connection.execute(
            "SELECT objid, ra FROM p WHERE ra BETWEEN ? AND ?", (10.0, 20.0)
        )
        names = [entry[0] for entry in cursor.description]
        type_codes = [entry[1] for entry in cursor.description]
        assert names == ["objid", "ra"]
        assert type_codes == ["int64", "float64"]
        assert cursor.rowcount == len(brute_oids(ra_values, 10.0, 20.0))

    def test_scalar_result_fetches_one_tuple(self, connection, ra_values):
        cursor = connection.execute(
            "SELECT count(*) FROM p WHERE ra BETWEEN ? AND ?", (10.0, 20.0)
        )
        assert cursor.description[0][0] == "count(*)"
        assert cursor.rowcount == 1
        row = cursor.fetchone()
        assert row == (float(len(brute_oids(ra_values, 10.0, 20.0))),)
        assert cursor.fetchone() is None

    def test_multi_aggregate_row_order_matches_description(self, connection):
        cursor = connection.execute(
            "SELECT count(*), min(ra), max(ra) FROM p WHERE ra BETWEEN ? AND ?",
            (0.0, 360.0),
        )
        labels = [entry[0] for entry in cursor.description]
        row = cursor.fetchone()
        assert labels == ["count(*)", "min(ra)", "max(ra)"]
        assert len(row) == 3 and row[1] <= row[2]

    def test_cache_level_progression(self, connection):
        cursor = connection.cursor()
        cursor.execute("SELECT objid FROM p WHERE ra BETWEEN 5.0 AND 6.0")
        assert cursor.cache_level == "cold"
        cursor.execute("SELECT objid FROM p WHERE ra BETWEEN 5.0 AND 6.0")
        assert cursor.cache_level == "exact"
        cursor.execute("SELECT objid FROM p WHERE ra BETWEEN 7.0 AND 8.0")
        assert cursor.cache_level == "masked"
        cursor.execute("SELECT objid FROM p WHERE ra BETWEEN ? AND ?", (5.0, 6.0))
        assert cursor.cache_level == "prepared"
        assert cursor.profile is not None and not cursor.profile.cold

    def test_fetch_before_execute_raises(self, connection):
        cursor = connection.cursor()
        with pytest.raises(api.InterfaceError):
            cursor.fetchone()

    def test_closed_cursor_raises(self, connection):
        cursor = connection.cursor()
        cursor.close()
        with pytest.raises(api.InterfaceError):
            cursor.execute("SELECT objid FROM p WHERE ra < 1.0")
        with pytest.raises(api.InterfaceError):
            cursor.fetchall()

    def test_cursor_context_manager(self, connection):
        with connection.cursor() as cursor:
            cursor.execute("SELECT objid FROM p WHERE ra < ?", (1.0,))
        assert cursor.closed

    def test_setinputsizes_are_noops(self, connection):
        cursor = connection.cursor()
        cursor.setinputsizes([8, 8])
        cursor.setoutputsize(8, 0)


class TestExecutemany:
    def test_concatenated_rows_in_input_order(self, connection, ra_values):
        bindings = [(10.0, 20.0), (15.0, 25.0), (300.0, 301.0)]
        cursor = connection.cursor()
        cursor.executemany("SELECT objid FROM p WHERE ra BETWEEN ? AND ?", bindings)
        expected = []
        for low, high in bindings:
            expected.extend(brute_oids(ra_values, low, high))
        # The vectorized batch executor answers overlapping and disjoint
        # same-column ranges alike.
        assert [result.batched for result in cursor.results] == [True, True, True]
        assert cursor.rowcount == len(expected)
        fetched = [int(row[0]) for row in cursor.fetchall()]
        bounds = [set(brute_oids(ra_values, low, high)) for low, high in bindings]
        offset = 0
        for (low, high), members in zip(bindings, bounds):
            chunk = fetched[offset : offset + len(members)]
            assert set(chunk) == members
            offset += len(chunk)

    def test_executemany_matches_literal_results(self, connection, ra_values):
        bindings = [(low, low + 2.0) for low in np.linspace(0.0, 350.0, 12)]
        cursor = connection.cursor()
        cursor.executemany("SELECT objid FROM p WHERE ra BETWEEN ? AND ?", bindings)
        for (low, high), result in zip(bindings, cursor.results):
            assert sorted(int(v) for v in result.column("objid")) == brute_oids(
                ra_values, low, high
            )

    def test_named_style_executemany(self, connection, ra_values):
        cursor = connection.cursor()
        cursor.executemany(
            "SELECT objid FROM p WHERE ra BETWEEN :lo AND :hi",
            [{"lo": 10.0, "hi": 12.0}, {"lo": 11.0, "hi": 13.0}],
        )
        assert cursor.rowcount == len(brute_oids(ra_values, 10.0, 12.0)) + len(
            brute_oids(ra_values, 11.0, 13.0)
        )

    def test_one_bad_binding_fails_before_any_execution(self, connection):
        cursor = connection.cursor()
        history = len(connection.database.query_history)
        with pytest.raises(api.ProgrammingError):
            cursor.executemany(
                "SELECT objid FROM p WHERE ra BETWEEN ? AND ?",
                [(10.0, 20.0), (30.0, 20.0)],  # second violates high >= low
            )
        assert len(connection.database.query_history) == history

    def test_batched_results_report_batched_cache_level(self, connection):
        cursor = connection.cursor()
        cursor.executemany(
            "SELECT objid FROM p WHERE ra BETWEEN ? AND ?",
            [(10.0, 20.0), (15.0, 25.0)],
        )
        assert [result.cache_level for result in cursor.results] == ["batched", "batched"]
        assert cursor.cache_level == "batched"

    def test_empty_parameter_sequence_is_executed_but_empty(self, connection):
        cursor = connection.cursor()
        cursor.executemany("SELECT objid FROM p WHERE ra BETWEEN ? AND ?", [])
        assert cursor.rowcount == 0
        assert cursor.description is None
        assert cursor.fetchone() is None
        assert cursor.fetchall() == []
        assert list(cursor) == []
