"""Client-side resilience: request timeouts, reconnect, idempotent retry.

Satellite gates: a request against a stalled server times out cleanly
(``TransientError``), a dropped socket redials with backoff when
``reconnect=True``, a mid-``executemany`` disconnect surfaces a clean
``OperationalError`` (no hang, no orphaned task), and only text-bearing
idempotent reads are ever retried — statement-id frames never are.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

import repro.aio
from repro.api.exceptions import (
    InterfaceError,
    OperationalError,
    TransientError,
)
from repro.engine.database import Database
from repro.fault import FaultInjector
from repro.server import ReproServer
from repro.server.protocol import PROTOCOL_VERSION, read_frame, write_frame

SQL = "SELECT v FROM t WHERE v BETWEEN ? AND ?"


def run(main):
    return asyncio.run(main())


def build_database(n_rows: int = 500, seed: int = 3) -> Database:
    rng = np.random.default_rng(seed)
    database = Database()
    database.create_table("t", {"v": "float64"})
    database.bulk_load("t", {"v": rng.uniform(0.0, 100.0, size=n_rows)})
    database.enable_adaptive("t", "v", strategy="segmentation")
    return database


class _StalledServer:
    """Answers the HELLO handshake, then goes silent forever."""

    def __init__(self) -> None:
        self._server: asyncio.AbstractServer | None = None
        self.address: tuple[str, int] | None = None

    async def __aenter__(self) -> "_StalledServer":
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self

    async def __aexit__(self, *exc_info) -> None:
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            frame = await read_frame(reader)
            if frame and frame.get("type") == "hello":
                write_frame(
                    writer,
                    {
                        "type": "hello",
                        "id": frame.get("id"),
                        "server": "stalled",
                        "version": "0",
                        "protocol": PROTOCOL_VERSION,
                        "knobs": {},
                    },
                )
                await writer.drain()
            while await read_frame(reader) is not None:
                pass  # read and ignore: the stall
        except (ConnectionError, asyncio.IncompleteReadError):
            pass


class _VanishingServer(_StalledServer):
    """Handshakes, then slams the socket shut on the first executemany."""

    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    return
                if frame.get("type") == "hello":
                    write_frame(
                        writer,
                        {
                            "type": "hello",
                            "id": frame.get("id"),
                            "server": "vanishing",
                            "version": "0",
                            "protocol": PROTOCOL_VERSION,
                            "knobs": {},
                        },
                    )
                    await writer.drain()
                    continue
                if frame.get("type") == "executemany":
                    writer.transport.abort()  # mid-request disconnect
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass


class TestRequestTimeout:
    def test_a_stalled_server_times_out_as_transient(self):
        async def go():
            async with _StalledServer() as stalled:
                connection = await repro.aio.connect(
                    *stalled.address, request_timeout=0.1
                )
                with pytest.raises(TransientError, match="timed out"):
                    await connection.execute("SELECT v FROM t")
                await connection.close()

        run(go)

    def test_late_responses_are_discarded_not_misdelivered(self):
        # After a timeout the correlation entry is gone: a late response for
        # that id must not resolve any later request's future.
        async def go():
            server = ReproServer(build_database(), port=0, batch_window_us=0.0)
            async with server:
                connection = await repro.aio.connect(
                    *server.address, request_timeout=5.0
                )
                cursor = await connection.execute(SQL, (10.0, 20.0))
                first = cursor.rowcount
                # Forge the timeout aftermath: drop a pending id by hand.
                stale_id = next(connection._ids)
                again = await connection.execute(SQL, (10.0, 20.0))
                assert again.rowcount == first
                assert stale_id not in connection._pending
                await connection.close()

        run(go)


class TestReconnect:
    def test_a_dropped_socket_redials_and_rehandshakes(self):
        async def go():
            server = ReproServer(build_database(), port=0, batch_window_us=0.0)
            async with server:
                connection = await repro.aio.connect(
                    *server.address,
                    reconnect=True,
                    reconnect_backoff_s=0.01,
                )
                before = (await connection.execute(SQL, (10.0, 20.0))).rowcount
                connection._abort_transport()
                connection._closed = True  # the receive task notices async
                after = (await connection.execute(SQL, (10.0, 20.0))).rowcount
                assert connection.reconnects == 1
                assert after == before
                assert connection.server_info["protocol"] == PROTOCOL_VERSION
                await connection.close()

        run(go)

    def test_without_reconnect_a_dead_connection_raises_interface_error(self):
        async def go():
            server = ReproServer(build_database(), port=0, batch_window_us=0.0)
            async with server:
                connection = await repro.aio.connect(*server.address)
                connection._abort_transport()
                connection._closed = True
                with pytest.raises(InterfaceError):
                    await connection.execute(SQL, (10.0, 20.0))
                await connection.close()

        run(go)

    def test_injected_drop_is_retried_transparently_for_text_reads(self):
        async def go():
            injector = FaultInjector(seed=5)
            injector.schedule("client.send", at=2, action="drop", op="execute")
            server = ReproServer(build_database(), port=0, batch_window_us=0.0)
            async with server:
                connection = await repro.aio.connect(
                    *server.address,
                    reconnect=True,
                    reconnect_backoff_s=0.01,
                    retry_reads=True,
                    injector=injector,
                )
                # Fire 1 is this execute's send; fire 2 (the drop) is its
                # retry? No — at=2 targets the *second* execute frame.
                first = await connection.execute(SQL, (10.0, 20.0))
                second = await connection.execute(SQL, (10.0, 20.0))
                assert second.rowcount == first.rowcount
                assert connection.retries == 1
                assert connection.reconnects == 1
                assert injector.fired("client.send") == 1
                await connection.close()

        run(go)

    def test_statement_id_frames_are_never_retried(self):
        # The server-side statement registry dies with the connection; a
        # retried id would hit the wrong (or no) statement.  The transient
        # error must surface instead.
        async def go():
            injector = FaultInjector(seed=5)
            injector.schedule("client.send", at=1, action="drop", op="execute")
            server = ReproServer(build_database(), port=0, batch_window_us=0.0)
            async with server:
                connection = await repro.aio.connect(
                    *server.address,
                    reconnect=True,
                    reconnect_backoff_s=0.01,
                    retry_reads=True,
                    injector=injector,
                )
                statement = await connection.prepare(SQL)
                with pytest.raises(TransientError):
                    await statement.execute((10.0, 20.0))
                assert connection.retries == 0
                await connection.close()

        run(go)


class TestMidStreamDisconnect:
    def test_executemany_disconnect_is_a_clean_operational_error(self):
        async def go():
            async with _VanishingServer() as vanishing:
                connection = await repro.aio.connect(*vanishing.address)
                with pytest.raises(OperationalError):
                    await asyncio.wait_for(
                        connection.executemany(
                            SQL, [(float(low), low + 10.0) for low in range(0, 50, 5)]
                        ),
                        timeout=5.0,  # a hang here is the bug this test guards
                    )
                # The receive task wound down; nothing is orphaned.
                assert connection.closed
                assert connection._receive_task is not None
                await asyncio.wait_for(
                    asyncio.gather(
                        connection._receive_task, return_exceptions=True
                    ),
                    timeout=2.0,
                )
                assert not connection._pending
                await connection.close()

        run(go)
