"""Unit tests for the util package (units, rng, stats, validation)."""

import numpy as np
import pytest

from repro.util.rng import DEFAULT_SEED, make_rng, spawn_rngs
from repro.util.stats import cumulative_sum, descriptive_stats, moving_average, zipf_probabilities
from repro.util.units import GB, KB, MB, format_bytes, parse_bytes
from repro.util.validation import ensure_in_range, ensure_positive, ensure_type


class TestUnits:
    def test_constants(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB

    def test_format_bytes(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(3 * KB) == "3.0KB"
        assert format_bytes(2.5 * MB) == "2.5MB"
        assert format_bytes(1 * GB) == "1.0GB"

    def test_format_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            format_bytes(-1)

    def test_parse_bytes(self):
        assert parse_bytes("3KB") == 3 * KB
        assert parse_bytes(" 25 mb ") == 25 * MB
        assert parse_bytes("1024") == 1024
        assert parse_bytes("100B") == 100

    def test_parse_round_trips_format(self):
        for value in (512, 3 * KB, 25 * MB, 2 * GB):
            assert parse_bytes(format_bytes(value)) == value

    def test_parse_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_bytes("  ")


class TestRNG:
    def test_default_seed_is_deterministic(self):
        assert make_rng().random() == make_rng(DEFAULT_SEED).random()

    def test_explicit_seed_changes_stream(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_spawn_independent_streams(self):
        streams = spawn_rngs(3, seed=5)
        draws = [rng.random() for rng in streams]
        assert len(set(draws)) == 3
        again = [rng.random() for rng in spawn_rngs(3, seed=5)]
        assert draws == again

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(-1)


class TestStats:
    def test_moving_average_window(self):
        result = moving_average([1, 2, 3, 4], window=2)
        assert result.tolist() == [1.0, 1.5, 2.5, 3.5]

    def test_moving_average_head_shrinks(self):
        result = moving_average([4, 8, 12], window=10)
        assert result.tolist() == [4.0, 6.0, 8.0]

    def test_moving_average_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], window=0)

    def test_moving_average_empty(self):
        assert moving_average([], window=3).size == 0

    def test_cumulative_sum(self):
        assert cumulative_sum([1, 2, 3]).tolist() == [1.0, 3.0, 6.0]

    def test_zipf_probabilities_normalised_and_decreasing(self):
        probabilities = zipf_probabilities(100, exponent=1.0)
        assert probabilities.sum() == pytest.approx(1.0)
        assert np.all(np.diff(probabilities) <= 0)

    def test_zipf_zero_exponent_is_uniform(self):
        probabilities = zipf_probabilities(10, exponent=0.0)
        assert np.allclose(probabilities, 0.1)

    def test_zipf_invalid_inputs(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0)
        with pytest.raises(ValueError):
            zipf_probabilities(10, exponent=-1)

    def test_descriptive_stats(self):
        summary = descriptive_stats([1.0, 2.0, 3.0])
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(2.0)
        assert descriptive_stats([])["count"] == 0


class TestValidation:
    def test_ensure_positive(self):
        assert ensure_positive("x", 5) == 5
        with pytest.raises(ValueError):
            ensure_positive("x", 0)
        assert ensure_positive("x", 0, allow_zero=True) == 0
        with pytest.raises(ValueError):
            ensure_positive("x", -1, allow_zero=True)

    def test_ensure_in_range(self):
        assert ensure_in_range("x", 0.5, 0, 1) == 0.5
        with pytest.raises(ValueError):
            ensure_in_range("x", 2, 0, 1)

    def test_ensure_type(self):
        assert ensure_type("x", 5, int) == 5
        with pytest.raises(TypeError):
            ensure_type("x", "five", (int, float))
