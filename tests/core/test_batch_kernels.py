"""The vectorized batch kernel layer: probes, routing, strategy select_many."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.baseline import UnsegmentedColumn
from repro.core.meta_index import SegmentMetaIndex
from repro.core.models import AdaptivePageModel
from repro.core.ranges import ValueRange
from repro.core.replication import ReplicatedColumn
from repro.core.segment import Segment
from repro.core.segmentation import SegmentedColumn
from repro.core.strategy import batch_bounds_arrays
from repro.util.sorted_search import sorted_probe, sorted_probe_many
from repro.util.units import KB


def _pairs(result):
    return sorted(zip(result.oids.tolist(), np.asarray(result.values).tolist()))


class TestSortedProbeMany:
    @pytest.mark.parametrize("dtype", ["int32", "int64", "uint16", "float64"])
    @pytest.mark.parametrize("side", ["left", "right"])
    def test_matches_scalar_probe(self, dtype, side):
        rng = np.random.default_rng(5)
        values = np.sort(rng.integers(0, 1_000, size=500).astype(dtype))
        probes = np.concatenate(
            [
                rng.uniform(-50.0, 1_050.0, size=64),
                values[:8].astype(np.float64),  # exact hits
                [-np.inf, np.inf, 0.0, 999.5],
            ]
        )
        expected = [sorted_probe(values, float(p), side=side) for p in probes]
        got = sorted_probe_many(values, probes, side=side)
        assert got.tolist() == expected

    def test_matches_numpy_on_floats(self):
        values = np.sort(np.random.default_rng(6).uniform(0, 10, size=100))
        probes = np.array([-1.0, 2.5, 9.99, 11.0])
        assert sorted_probe_many(values, probes).tolist() == np.searchsorted(
            values, probes, side="left"
        ).tolist()

    def test_int64_extremes_do_not_overflow(self):
        values = np.array([np.iinfo(np.int64).min, 0, np.iinfo(np.int64).max])
        probes = np.array([-np.inf, np.inf, float(np.iinfo(np.int64).max) * 2])
        assert sorted_probe_many(values, probes).tolist() == [0, 3, 3]

    def test_invalid_side_rejected(self):
        with pytest.raises(ValueError, match="side"):
            sorted_probe_many(np.array([1, 2, 3]), np.array([1.0]), side="middle")


class TestSegmentSelectMany:
    def test_matches_per_query_select(self, values):
        segment = Segment(ValueRange(0.0, 100_000.0), values)
        bounds = [(0.0, 100_000.0), (10.5, 2_000.0), (50_000.0, 50_000.0), (99_000.0, 200_000.0)]
        lows = np.array([b[0] for b in bounds])
        highs = np.array([b[1] for b in bounds])
        batch = segment.select_many(lows, highs)
        for (low, high), got in zip(bounds, batch):
            expected = segment.select(ValueRange(low, high)) if low < high else None
            if expected is None:
                assert got.count == 0
            else:
                assert _pairs(got) == _pairs(expected)
            assert got.values_sorted

    def test_results_are_views(self, values):
        segment = Segment(ValueRange(0.0, 100_000.0), values)
        [result] = segment.select_many(np.array([100.0]), np.array([5_000.0]))
        assert result.values.base is not None  # zero-copy slice, no envelope copy


class TestRouteMany:
    def _index(self):
        segs = [
            Segment(ValueRange(0.0, 10.0), np.arange(10)),
            Segment(ValueRange(10.0, 25.0), np.arange(10, 25)),
            Segment(ValueRange(25.0, 100.0), np.arange(25, 100)),
        ]
        return SegmentMetaIndex(segs)

    def test_spans_match_overlapping(self):
        index = self._index()
        queries = [
            (0.0, 100.0),
            (5.0, 10.0),
            (10.0, 10.0),  # empty
            (9.0, 26.0),
            (-5.0, 0.0),  # before the domain: empty
            (100.0, 200.0),  # past the domain: empty
        ]
        lows = np.array([q[0] for q in queries])
        highs = np.array([q[1] for q in queries])
        starts, stops = index.route_many(lows, highs)
        for (low, high), start, stop in zip(queries, starts.tolist(), stops.tolist()):
            expected = index.overlapping(ValueRange(low, high))
            got = [index[i] for i in range(start, stop)]
            assert [id(s) for s in got] == [id(s) for s in expected]

    def test_contained_tags_recoverable(self):
        index = self._index()
        lows = np.array([5.0])
        highs = np.array([30.0])
        starts, stops = index.route_many(lows, highs)
        tags = [
            lows[0] <= seg.vrange.low and seg.vrange.high <= highs[0]
            for seg in (index[i] for i in range(starts[0], stops[0]))
        ]
        expected = [tag for _, tag in index.overlapping_classified(ValueRange(5.0, 30.0))]
        assert tags == expected

    def test_high_cache_checked_by_invariants(self):
        index = self._index()
        index.check_invariants()
        index._highs[1] = 11.0
        with pytest.raises(AssertionError, match="high-bound cache"):
            index.check_invariants()


class TestBatchBoundsValidation:
    def test_reversed_bounds_rejected(self):
        with pytest.raises(ValueError, match="high >= low"):
            batch_bounds_arrays([(1.0, 2.0), (5.0, 4.0)])

    def test_non_finite_bounds_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            batch_bounds_arrays([(0.0, math.inf)])

    def test_empty_batch_allowed(self):
        lows, highs = batch_bounds_arrays([])
        assert lows.size == 0 and highs.size == 0


def _batch_bounds(rng, n, domain=(0.0, 100_000.0), width=1_500.0):
    lows = rng.uniform(domain[0], domain[1] - width, size=n)
    return [(float(low), float(low + rng.uniform(0.0, width))) for low in lows]


class TestSegmentedSelectMany:
    def _column(self, values):
        return SegmentedColumn(values, model=AdaptivePageModel(m_min=3 * KB, m_max=12 * KB))

    def test_matches_per_query_results(self, values):
        rng = np.random.default_rng(8)
        bounds = _batch_bounds(rng, 24) + [(0.0, 100_000.0), (5.0, 5.0)]
        batch_col = self._column(values.copy())
        serial_col = self._column(values.copy())
        batch = batch_col.select_many(bounds)
        for (low, high), got in zip(bounds, batch):
            expected = serial_col.select(low, high)
            assert _pairs(got) == _pairs(expected)
        batch_col.check_invariants()

    def test_one_history_record_per_batch(self, values):
        column = self._column(values)
        bounds = _batch_bounds(np.random.default_rng(9), 16)
        column.select_many(bounds)
        assert len(column.history) == 1
        record = column.history[-1]
        assert record.batch_size == 16
        assert record.result_count == sum(
            ((values >= low) & (values < high)).sum() for low, high in bounds
        )
        # Reads are amortized: each touched segment is read once per batch,
        # so the batch reads at most the whole column once.
        assert record.reads_bytes <= column.total_bytes

    def test_batch_adaptation_splits_segments(self, values):
        column = self._column(values)
        assert column.segment_count == 1
        column.select_many([(10_000.0, 12_000.0), (60_000.0, 61_000.0)])
        assert column.segment_count > 1
        column.check_invariants()

    def test_empty_batch(self, values):
        column = self._column(values)
        assert column.select_many([]) == []
        assert len(column.history) == 0

    def test_supports_batch_flag(self):
        assert SegmentedColumn.supports_batch
        assert UnsegmentedColumn.supports_batch
        assert not ReplicatedColumn.supports_batch


class TestUnsegmentedSelectMany:
    def test_matches_per_query_results(self, values):
        column = UnsegmentedColumn(values)
        bounds = _batch_bounds(np.random.default_rng(10), 12) + [(7.0, 7.0)]
        batch = column.select_many(bounds)
        for (low, high), got in zip(bounds, batch):
            expected = column.select(low, high)
            assert _pairs(got) == _pairs(expected)

    def test_single_scan_accounted_per_batch(self, values):
        column = UnsegmentedColumn(values)
        column.select_many(_batch_bounds(np.random.default_rng(11), 8))
        assert len(column.history) == 1
        record = column.history[-1]
        assert record.batch_size == 8
        assert record.reads_bytes == column.total_bytes


class TestReplicatedSelectManyFallback:
    def test_sequential_fallback_matches_per_query(self, values, apm_model):
        rng = np.random.default_rng(12)
        bounds = _batch_bounds(rng, 6)
        batch_col = ReplicatedColumn(values.copy(), model=AdaptivePageModel(m_min=3 * KB, m_max=12 * KB))
        serial_col = ReplicatedColumn(values.copy(), model=AdaptivePageModel(m_min=3 * KB, m_max=12 * KB))
        batch = batch_col.select_many(bounds)
        for (low, high), got in zip(bounds, batch):
            expected = serial_col.select(low, high)
            assert _pairs(got) == _pairs(expected)
        # The fallback keeps the per-query contract: one record per member.
        assert len(batch_col.history) == len(bounds)
        assert all(record.batch_size == 1 for record in batch_col.history)
