"""Tests for the pluggable adaptive-strategy registry."""

import numpy as np
import pytest

from repro.core.baseline import UnsegmentedColumn
from repro.core.replication import ReplicatedColumn
from repro.core.segmentation import SegmentedColumn
from repro.core.strategy import (
    AdaptiveColumnStrategy,
    available_strategies,
    create_strategy,
    register_strategy,
    strategy_class,
    unregister_strategy,
)
from repro.engine.database import Database
from repro.util.units import KB

BUILTINS = {
    "unsegmented": UnsegmentedColumn,
    "segmentation": SegmentedColumn,
    "replication": ReplicatedColumn,
}


class TestRegistryLookup:
    def test_builtins_are_registered(self):
        assert set(BUILTINS) <= set(available_strategies())
        for name, cls in BUILTINS.items():
            assert strategy_class(name) is cls

    def test_lookup_is_case_and_whitespace_insensitive(self):
        assert strategy_class("  Segmentation ") is SegmentedColumn

    def test_unknown_name_error_lists_available_strategies(self):
        with pytest.raises(ValueError) as excinfo:
            strategy_class("btree")
        message = str(excinfo.value)
        assert "btree" in message
        for name in BUILTINS:
            assert name in message

    def test_builtins_satisfy_the_protocol(self, values, apm_model):
        for name in available_strategies():
            column = create_strategy(name, values.copy(), model=apm_model)
            assert isinstance(column, AdaptiveColumnStrategy)


class TestRegistration:
    def test_register_and_create_a_dummy_strategy(self, values):
        class DummyColumn(UnsegmentedColumn):
            strategy_name = "dummy"
            display_short = "Dummy"

        try:
            register_strategy(DummyColumn)
            assert "dummy" in available_strategies()
            column = create_strategy("dummy", values)
            assert isinstance(column, DummyColumn)
            assert column.select(0, 50_000).count > 0
            assert column.describe()["strategy"] == "dummy"
        finally:
            unregister_strategy("dummy")
        assert "dummy" not in available_strategies()

    def test_registration_normalizes_the_name(self, values):
        class MixedCase(UnsegmentedColumn):
            strategy_name = " Hybrid "

        try:
            register_strategy(MixedCase)
            assert "hybrid" in available_strategies()
            assert strategy_class("HYBRID") is MixedCase
            assert isinstance(create_strategy("Hybrid", values), MixedCase)
        finally:
            unregister_strategy("Hybrid")
        assert "hybrid" not in available_strategies()

    def test_reregistering_the_same_class_is_a_noop(self):
        register_strategy(SegmentedColumn)
        assert strategy_class("segmentation") is SegmentedColumn

    def test_shadowing_a_taken_name_is_rejected(self):
        class Impostor(UnsegmentedColumn):
            strategy_name = "unsegmented"

        with pytest.raises(ValueError, match="already registered"):
            register_strategy(Impostor)

    def test_missing_strategy_name_is_rejected(self):
        class Nameless:
            strategy_name = ""

        with pytest.raises(ValueError, match="strategy_name"):
            register_strategy(Nameless)


class TestCreateStrategy:
    def test_model_is_required_for_model_driven_strategies(self, values):
        for name in ("segmentation", "replication"):
            with pytest.raises(ValueError, match="requires a segmentation model"):
                create_strategy(name, values)

    def test_model_is_ignored_for_the_baseline(self, values, apm_model):
        column = create_strategy("unsegmented", values, model=apm_model)
        assert isinstance(column, UnsegmentedColumn)

    def test_none_valued_unknown_options_are_dropped(self, values, apm_model):
        column = create_strategy("segmentation", values, model=apm_model, storage_budget=None)
        assert isinstance(column, SegmentedColumn)

    def test_unknown_option_with_value_is_rejected(self, values, apm_model):
        with pytest.raises(TypeError, match="storage_budget"):
            create_strategy("segmentation", values, model=apm_model, storage_budget=1e9)

    def test_options_reach_the_constructor(self, values, apm_model):
        budget = 10 * values.nbytes
        column = create_strategy("replication", values, model=apm_model, storage_budget=budget)
        assert column.storage_budget == budget


class TestStrategySurface:
    def test_stats_reflects_the_last_selection(self, values, apm_model):
        column = create_strategy("segmentation", values, model=apm_model)
        assert column.stats() is None
        column.select(0, 10_000)
        stats = column.stats()
        assert stats is not None and stats.low == 0.0 and stats.high == 10_000.0

    def test_adapt_runs_a_selection_for_its_side_effect(self, values, apm_model):
        column = create_strategy("segmentation", values, model=apm_model)
        stats = column.adapt(0, 10_000)
        assert stats is not None
        assert len(column.history) == 1

    def test_describe_reports_the_current_state(self, values, apm_model):
        column = create_strategy("replication", values, model=apm_model)
        column.select(0, 10_000)
        description = column.describe()
        assert description["strategy"] == "replication"
        assert description["queries_executed"] == 1
        assert description["storage_bytes"] >= description["total_bytes"]
        assert description["domain"] == (column.domain.low, column.domain.high)

    def test_paper_labels(self):
        assert SegmentedColumn.paper_label("apm") == "APM Segm"
        assert ReplicatedColumn.paper_label("gd") == "GD Repl"
        assert UnsegmentedColumn.paper_label("apm") == "NoSegm"
        assert UnsegmentedColumn.paper_label() == "NoSegm"


class TestDatabaseEnableAdaptive:
    """``Database.enable_adaptive`` round-trips for every built-in strategy."""

    @staticmethod
    def _database() -> Database:
        rng = np.random.default_rng(5)
        database = Database()
        database.create_table("p", {"objid": "int64", "ra": "float64"})
        database.bulk_load(
            "p",
            {
                "objid": np.arange(5_000, dtype=np.int64),
                "ra": rng.uniform(0.0, 360.0, size=5_000),
            },
        )
        return database

    @pytest.mark.parametrize("strategy", sorted(BUILTINS))
    def test_round_trip(self, strategy):
        database = self._database()
        handle = database.enable_adaptive(
            "p", "ra", strategy=strategy, m_min=2 * KB, m_max=8 * KB
        )
        assert handle.strategy == strategy
        assert database.catalog.adaptive_strategy("p", "ra") == strategy
        result = database.execute("SELECT objid FROM p WHERE ra BETWEEN 10.0 AND 50.0")
        expected = database.adaptive_handle("p", "ra").adaptive.stats().result_count
        assert result.row_count == expected
        database.disable_adaptive("p", "ra")
        assert database.catalog.adaptive_strategy("p", "ra") is None

    def test_unknown_strategy_is_rejected_with_the_available_list(self):
        database = self._database()
        with pytest.raises(ValueError, match="unknown strategy"):
            database.enable_adaptive("p", "ra", strategy="btree")

    def test_replication_options_are_forwarded(self):
        database = self._database()
        budget = 4 * 10 * 5_000 * 8
        handle = database.enable_adaptive(
            "p", "ra", strategy="replication", storage_budget=budget
        )
        assert handle.adaptive.storage_budget == budget

    def test_mixed_case_plugin_round_trips_through_the_engine(self):
        class MixedCasePlugin(UnsegmentedColumn):
            strategy_name = "MixedCase"

        register_strategy(MixedCasePlugin)
        try:
            database = self._database()
            handle = database.enable_adaptive("p", "ra", strategy="mixedcase")
            assert handle.strategy == "mixedcase"
            assert database.catalog.adaptive_strategy("p", "ra") == "mixedcase"
            result = database.execute("SELECT objid FROM p WHERE ra BETWEEN 10.0 AND 50.0")
            assert result.row_count > 0
        finally:
            unregister_strategy("mixedcase")

    def test_deprecated_wrappers_still_work(self):
        database = self._database()
        with pytest.warns(DeprecationWarning, match="enable_adaptive_segmentation is deprecated"):
            handle = database.enable_adaptive_segmentation("p", "ra")
        assert handle.strategy == "segmentation"

    def test_deprecated_replication_wrapper_warns(self):
        database = self._database()
        with pytest.warns(DeprecationWarning, match="enable_adaptive_replication is deprecated"):
            handle = database.enable_adaptive_replication("p", "ra")
        assert handle.strategy == "replication"
