"""Unit tests for adaptive replication (Algorithms 2-5)."""

import numpy as np
import pytest

from repro.core.models import AdaptivePageModel, GaussianDice
from repro.core.ranges import ValueRange
from repro.core.replication import ReplicatedColumn
from repro.util.units import KB
from tests.conftest import TEST_DOMAIN, brute_force_count


@pytest.fixture
def column(values, apm_model) -> ReplicatedColumn:
    return ReplicatedColumn(values, model=apm_model, domain=TEST_DOMAIN)


class TestConstruction:
    def test_starts_as_single_materialized_root(self, column):
        assert column.segment_count == 1
        assert column.tree.roots[0].materialized
        assert column.storage_bytes == column.total_bytes

    def test_rejects_empty_input(self, apm_model):
        with pytest.raises(ValueError):
            ReplicatedColumn(np.array([]), model=apm_model)

    def test_budget_below_column_size_rejected(self, values, apm_model):
        with pytest.raises(ValueError):
            ReplicatedColumn(values, model=apm_model, storage_budget=10.0)


class TestSelectionCorrectness:
    def test_single_query_matches_brute_force(self, column, values):
        result = column.select(10_000, 20_000)
        assert result.count == brute_force_count(values, 10_000, 20_000)

    def test_many_queries_remain_correct_while_replicating(self, column, values):
        rng = np.random.default_rng(23)
        for _ in range(150):
            low = float(rng.uniform(0, 90_000))
            high = low + float(rng.uniform(100, 15_000))
            assert column.select(low, high).count == brute_force_count(values, low, high)
        column.check_invariants()

    def test_whole_domain_query_returns_everything(self, column, values):
        for low in range(0, 100_000, 10_000):
            column.select(float(low), float(low + 10_000))
        result = column.select(*TEST_DOMAIN)
        assert result.count == values.size

    def test_query_outside_domain_is_empty(self, column):
        assert column.select(500_000, 600_000).count == 0

    def test_gd_model_replication_correct(self, values):
        column = ReplicatedColumn(values, model=GaussianDice(seed=2), domain=TEST_DOMAIN)
        rng = np.random.default_rng(2)
        for _ in range(100):
            low = float(rng.uniform(0, 60_000))
            high = low + 30_000
            assert column.select(low, high).count == brute_force_count(values, low, high)
        column.check_invariants()


class TestCoveringSet:
    def test_initial_cover_is_the_root(self, column):
        cover = column.get_cover(ValueRange(10_000, 20_000))
        assert cover == [column.tree.roots[0]]

    def test_cover_prefers_materialized_children(self, column):
        column.select(10_000, 20_000)  # creates a materialized replica of the range
        cover = column.get_cover(ValueRange(12_000, 18_000))
        assert len(cover) == 1
        assert cover[0].vrange == ValueRange(10_000, 20_000)

    def test_cover_backtracks_to_ancestor_for_virtual_areas(self, column):
        column.select(10_000, 20_000)
        cover = column.get_cover(ValueRange(50_000, 60_000))  # untouched, still virtual below
        assert cover[0].vrange == ValueRange(*TEST_DOMAIN)

    def test_cover_segments_are_disjoint_and_cover_query(self, column):
        rng = np.random.default_rng(5)
        for _ in range(80):
            low = float(rng.uniform(0, 90_000))
            column.select(low, low + 8_000)
        query = ValueRange(20_000, 70_000)
        cover = column.get_cover(query)
        assert all(node.materialized for node in cover)
        ranges = sorted((node.vrange for node in cover), key=lambda r: r.low)
        for first, second in zip(ranges, ranges[1:]):
            assert first.high <= second.low  # disjoint
        from repro.core.ranges import ranges_cover

        assert ranges_cover(ranges, query)


class TestReplicaTreeEvolution:
    def test_replication_writes_less_than_reads(self, column):
        column.select(10_000, 20_000)
        stats = column.history[-1]
        assert 0 < stats.writes_bytes < stats.reads_bytes

    def test_storage_grows_then_shrinks_as_originals_drop(self, values, apm_model):
        column = ReplicatedColumn(values, model=apm_model, domain=TEST_DOMAIN)
        rng = np.random.default_rng(31)
        storage = []
        for _ in range(400):
            low = float(rng.uniform(0, 90_000))
            column.select(low, low + 10_000)
            storage.append(column.storage_bytes)
        assert max(storage) > column.total_bytes * 1.1  # replicas cost extra storage
        assert storage[-1] < max(storage)  # fully replicated originals were dropped

    def test_dropping_releases_root_when_fully_replicated(self, values):
        column = ReplicatedColumn(
            values, model=AdaptivePageModel(m_min=1 * KB, m_max=4 * KB), domain=TEST_DOMAIN
        )
        for low in range(0, 100_000, 5_000):
            column.select(float(low), float(low + 5_000))
        # The original single-segment root should eventually disappear.
        root_ranges = [root.vrange for root in column.tree.roots]
        assert ValueRange(*TEST_DOMAIN) not in root_ranges
        assert len(column.tree.roots) > 1

    def test_segments_dropped_counter(self, values, apm_model):
        column = ReplicatedColumn(values, model=apm_model, domain=TEST_DOMAIN)
        dropped = 0
        for low in range(0, 100_000, 10_000):
            column.select(float(low), float(low + 10_000))
            dropped += column.history[-1].segments_dropped
        assert dropped >= 1

    def test_tree_depth_reported(self, column):
        assert column.tree_depth == 0
        column.select(10_000, 20_000)
        assert column.tree_depth >= 1


class TestStorageBudget:
    def test_budget_is_enforced(self, values, apm_model):
        budget = values.size * values.dtype.itemsize * 1.2
        column = ReplicatedColumn(
            values, model=apm_model, domain=TEST_DOMAIN, storage_budget=budget
        )
        rng = np.random.default_rng(41)
        for _ in range(200):
            low = float(rng.uniform(0, 90_000))
            column.select(low, low + 10_000)
            assert column.storage_bytes <= budget * 1.001
        column.check_invariants()

    def test_budgeted_column_still_answers_correctly(self, values, apm_model):
        budget = values.size * values.dtype.itemsize * 1.2
        column = ReplicatedColumn(
            values, model=apm_model, domain=TEST_DOMAIN, storage_budget=budget
        )
        rng = np.random.default_rng(43)
        for _ in range(100):
            low = float(rng.uniform(0, 90_000))
            high = low + 10_000
            assert column.select(low, high).count == brute_force_count(values, low, high)
