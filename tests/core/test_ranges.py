"""Unit tests for value ranges."""

import numpy as np
import pytest

from repro.core.ranges import ValueRange, coalesce_ranges, domain_of, ranges_cover


class TestValueRangeBasics:
    def test_width_and_midpoint(self):
        vrange = ValueRange(10.0, 30.0)
        assert vrange.width == 20.0
        assert vrange.midpoint == 20.0

    def test_empty_range(self):
        assert ValueRange(5.0, 5.0).is_empty
        assert not ValueRange(5.0, 6.0).is_empty

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            ValueRange(10.0, 5.0)

    def test_non_finite_bounds_rejected(self):
        with pytest.raises(ValueError):
            ValueRange(float("-inf"), 10.0)
        with pytest.raises(ValueError):
            ValueRange(0.0, float("nan"))

    def test_contains_is_half_open(self):
        vrange = ValueRange(0.0, 10.0)
        assert vrange.contains(0.0)
        assert vrange.contains(9.999)
        assert not vrange.contains(10.0)
        assert not vrange.contains(-0.001)

    def test_contains_range(self):
        outer = ValueRange(0.0, 100.0)
        assert outer.contains_range(ValueRange(0.0, 100.0))
        assert outer.contains_range(ValueRange(10.0, 20.0))
        assert not outer.contains_range(ValueRange(90.0, 101.0))

    def test_ordering_is_by_low_then_high(self):
        assert ValueRange(1.0, 5.0) < ValueRange(2.0, 3.0)
        assert ValueRange(1.0, 3.0) < ValueRange(1.0, 5.0)


class TestOverlapAndIntersection:
    def test_overlapping_ranges(self):
        assert ValueRange(0, 10).overlaps(ValueRange(5, 15))
        assert ValueRange(5, 15).overlaps(ValueRange(0, 10))

    def test_adjacent_ranges_do_not_overlap(self):
        assert not ValueRange(0, 10).overlaps(ValueRange(10, 20))

    def test_intersection(self):
        result = ValueRange(0, 10).intersect(ValueRange(5, 15))
        assert result == ValueRange(5, 10)

    def test_disjoint_intersection_is_empty(self):
        result = ValueRange(0, 10).intersect(ValueRange(20, 30))
        assert result.is_empty

    def test_fraction_of(self):
        assert ValueRange(0, 5).fraction_of(ValueRange(0, 10)) == pytest.approx(0.5)
        assert ValueRange(20, 30).fraction_of(ValueRange(0, 10)) == 0.0


class TestSplitting:
    def test_split_at_interior_points(self):
        pieces = ValueRange(0, 10).split_at([3, 7])
        assert pieces == [ValueRange(0, 3), ValueRange(3, 7), ValueRange(7, 10)]

    def test_split_ignores_exterior_and_boundary_points(self):
        pieces = ValueRange(0, 10).split_at([-5, 0, 10, 15])
        assert pieces == [ValueRange(0, 10)]

    def test_split_deduplicates_points(self):
        pieces = ValueRange(0, 10).split_at([5, 5.0, 5])
        assert pieces == [ValueRange(0, 5), ValueRange(5, 10)]

    def test_split_partitions_the_range(self):
        original = ValueRange(0, 100)
        pieces = original.split_at([12.5, 50, 80])
        assert pieces[0].low == original.low
        assert pieces[-1].high == original.high
        for first, second in zip(pieces, pieces[1:]):
            assert first.high == second.low

    def test_interior_points_sorted_unique(self):
        assert ValueRange(0, 10).interior_points([7, 3, 7]) == [3, 7]


class TestDomainOf:
    def test_integer_domain_includes_max(self):
        domain = domain_of(np.array([3, 9, 1], dtype=np.int32))
        assert domain.low == 1.0
        assert domain.high == 10.0
        assert domain.contains(9)

    def test_float_domain_includes_max(self):
        values = np.array([0.5, 2.5], dtype=np.float64)
        domain = domain_of(values)
        assert domain.contains(2.5)

    def test_empty_column_rejected(self):
        with pytest.raises(ValueError):
            domain_of(np.array([]))


class TestCoalesceAndCover:
    def test_coalesce_merges_overlaps(self):
        merged = coalesce_ranges([ValueRange(0, 5), ValueRange(3, 8), ValueRange(10, 12)])
        assert merged == [ValueRange(0, 8), ValueRange(10, 12)]

    def test_coalesce_empty_input(self):
        assert coalesce_ranges([]) == []

    def test_ranges_cover_true(self):
        pieces = [ValueRange(0, 4), ValueRange(4, 8), ValueRange(8, 12)]
        assert ranges_cover(pieces, ValueRange(1, 11))

    def test_ranges_cover_detects_gap(self):
        pieces = [ValueRange(0, 4), ValueRange(6, 12)]
        assert not ranges_cover(pieces, ValueRange(1, 11))

    def test_empty_target_always_covered(self):
        assert ranges_cover([], ValueRange(5, 5))
