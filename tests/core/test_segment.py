"""Unit tests for segments and selection results."""

import numpy as np
import pytest

from repro.core.ranges import ValueRange
from repro.core.segment import Segment, SelectionResult


@pytest.fixture
def segment() -> Segment:
    values = np.array([5, 50, 25, 75, 10, 99, 0], dtype=np.int32)
    return Segment(ValueRange(0, 100), values)


class TestSegmentBasics:
    def test_payload_is_value_sorted_with_cosorted_position_oids(self, segment):
        # The sorted layout keeps values ascending; the default oids are the
        # original positions, co-sorted so (oid, value) pairs are preserved.
        assert segment.values.tolist() == sorted([5, 50, 25, 75, 10, 99, 0])
        assert sorted(segment.oids.tolist()) == list(range(7))
        original = [5, 50, 25, 75, 10, 99, 0]
        for oid, value in zip(segment.oids.tolist(), segment.values.tolist()):
            assert original[oid] == value

    def test_count_and_size(self, segment):
        assert segment.count == 7
        assert segment.size_bytes == 7 * 4

    def test_materialized_flag(self, segment):
        assert segment.materialized
        virtual = Segment(ValueRange(0, 10), value_width=4, estimated_count=25)
        assert not virtual.materialized
        assert virtual.size_bytes == 100

    def test_mismatched_oids_rejected(self):
        with pytest.raises(ValueError):
            Segment(ValueRange(0, 10), np.array([1, 2]), np.array([0]))

    def test_virtual_requires_width(self):
        with pytest.raises(ValueError):
            Segment(ValueRange(0, 10))

    def test_check_invariants_detects_out_of_range_values(self):
        bad = Segment(ValueRange(0, 10), np.array([5, 42], dtype=np.int32))
        with pytest.raises(AssertionError):
            bad.check_invariants()


class TestEstimates:
    def test_uniform_estimate(self, segment):
        half = segment.estimate_count(ValueRange(0, 50))
        assert half == pytest.approx(3.5)
        assert segment.estimate_bytes(ValueRange(0, 50)) == pytest.approx(14.0)

    def test_estimate_outside_range_is_zero(self, segment):
        assert segment.estimate_count(ValueRange(200, 300)) == 0.0

    def test_virtual_segment_estimates(self):
        virtual = Segment(ValueRange(0, 100), value_width=4, estimated_count=10)
        assert virtual.estimate_count(ValueRange(0, 25)) == pytest.approx(2.5)


class TestSelectAndPartition:
    def test_select_returns_matching_pairs(self, segment):
        result = segment.select(ValueRange(10, 60))
        assert sorted(result.values.tolist()) == [10, 25, 50]
        assert set(result.oids.tolist()) == {1, 2, 4}

    def test_select_on_virtual_segment_fails(self):
        virtual = Segment(ValueRange(0, 10), value_width=4, estimated_count=5)
        with pytest.raises(RuntimeError):
            virtual.select(ValueRange(0, 5))

    def test_extract_creates_materialized_subsegment(self, segment):
        piece = segment.extract(ValueRange(0, 30))
        assert piece.materialized
        assert piece.vrange == ValueRange(0, 30)
        assert sorted(piece.values.tolist()) == [0, 5, 10, 25]

    def test_partition_conserves_values(self, segment):
        pieces = segment.partition([30, 70])
        assert [p.vrange for p in pieces] == [
            ValueRange(0, 30),
            ValueRange(30, 70),
            ValueRange(70, 100),
        ]
        rebuilt = np.concatenate([p.values for p in pieces])
        assert sorted(rebuilt.tolist()) == sorted(segment.values.tolist())
        for piece in pieces:
            piece.check_invariants()

    def test_partition_preserves_oid_value_pairing(self, segment):
        original = dict(zip(segment.oids.tolist(), segment.values.tolist()))
        pieces = segment.partition([50])
        for piece in pieces:
            for oid, value in zip(piece.oids.tolist(), piece.values.tolist()):
                assert original[oid] == value

    def test_partition_without_interior_points_returns_self(self, segment):
        assert segment.partition([1000]) == [segment]

    def test_partition_and_select_are_zero_copy_views(self, segment):
        pieces = segment.partition([30, 70])
        for piece in pieces:
            assert piece.values.base is segment.values or piece.values.size == 0
            assert piece.oids.base is segment.oids or piece.oids.size == 0
        result = segment.select(ValueRange(10, 60))
        assert result.values.base is segment.values

    def test_select_fully_contained_returns_whole_payload(self, segment):
        result = segment.select(ValueRange(-10, 1000))
        assert result.values is segment.values
        assert result.oids is segment.oids

    def test_free_turns_segment_virtual(self, segment):
        count = segment.count
        segment.free()
        assert not segment.materialized
        assert segment.count == count


class TestSelectionResult:
    def test_empty(self):
        result = SelectionResult.empty(np.dtype(np.int32))
        assert result.count == 0

    def test_concatenate(self):
        first = SelectionResult(np.array([1, 2], dtype=np.int32), np.array([0, 1], dtype=np.int64))
        second = SelectionResult(np.array([3], dtype=np.int32), np.array([2], dtype=np.int64))
        merged = SelectionResult.concatenate([first, second], np.dtype(np.int32))
        assert merged.count == 3
        assert merged.values.tolist() == [1, 2, 3]

    def test_concatenate_skips_empty_parts(self):
        empty = SelectionResult.empty(np.dtype(np.int32))
        merged = SelectionResult.concatenate([empty, empty], np.dtype(np.int32))
        assert merged.count == 0
