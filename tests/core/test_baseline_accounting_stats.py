"""Unit tests for the baseline column, accounting and segment statistics."""

import numpy as np
import pytest

from repro.core.accounting import IOAccountant, PhaseTimer, QueryLog, QueryStats
from repro.core.baseline import UnsegmentedColumn
from repro.core.models import AdaptivePageModel
from repro.core.segmentation import SegmentedColumn
from repro.core.statistics import segment_statistics
from repro.util.units import KB
from tests.conftest import TEST_DOMAIN, brute_force_count


class TestUnsegmentedColumn:
    def test_results_match_brute_force(self, values):
        column = UnsegmentedColumn(values, domain=TEST_DOMAIN)
        assert column.select(10_000, 30_000).count == brute_force_count(values, 10_000, 30_000)

    def test_every_query_scans_the_whole_column(self, values):
        column = UnsegmentedColumn(values, domain=TEST_DOMAIN)
        for _ in range(5):
            column.select(0, 1_000)
        assert column.accountant.total_reads_bytes == 5 * column.total_bytes
        assert column.accountant.total_writes_bytes == 0
        assert column.segment_count == 1

    def test_history_is_recorded(self, values):
        column = UnsegmentedColumn(values, domain=TEST_DOMAIN)
        column.select(0, 1_000)
        assert len(column.history) == 1
        assert column.history[0].reads_bytes == column.total_bytes

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            UnsegmentedColumn(np.array([]))


class TestIOAccountant:
    def test_totals_accumulate(self):
        accountant = IOAccountant()
        accountant.record_read(100)
        accountant.record_write(40)
        accountant.record_read(60)
        assert accountant.total_reads_bytes == 160
        assert accountant.total_writes_bytes == 40

    def test_negative_sizes_rejected(self):
        accountant = IOAccountant()
        with pytest.raises(ValueError):
            accountant.record_read(-1)
        with pytest.raises(ValueError):
            accountant.record_write(-1)

    def test_attached_stats_receive_increments(self):
        accountant = IOAccountant()
        stats = QueryStats(index=0, low=0, high=1)
        accountant.attach(stats)
        accountant.record_read(100)
        accountant.record_write(10)
        accountant.detach()
        accountant.record_read(5)
        assert stats.reads_bytes == 100
        assert stats.writes_bytes == 10
        assert stats.segments_scanned == 1
        assert accountant.total_reads_bytes == 105


class TestQueryLog:
    def _log(self) -> QueryLog:
        log = QueryLog()
        for i, (reads, writes) in enumerate([(10, 1), (20, 2), (30, 3)]):
            log.append(QueryStats(index=i, low=0, high=1, reads_bytes=reads, writes_bytes=writes))
        return log

    def test_series_and_cumulative(self):
        log = self._log()
        assert log.series("reads_bytes") == [10, 20, 30]
        assert log.cumulative("writes_bytes") == [1, 3, 6]

    def test_average(self):
        assert self._log().average("reads_bytes") == pytest.approx(20.0)
        assert QueryLog().average("reads_bytes") == 0.0

    def test_indexing(self):
        log = self._log()
        assert log[0].reads_bytes == 10
        assert len(log) == 3


class TestPhaseTimer:
    def test_phases_accumulate(self):
        timer = PhaseTimer()
        with timer.phase("selection"):
            pass
        with timer.phase("selection"):
            pass
        assert timer.total("selection") >= 0.0
        assert timer.total("unknown") == 0.0
        timer.reset()
        assert timer.total("selection") == 0.0

    def test_disabled_timer_measures_nothing(self):
        timer = PhaseTimer(enabled=False)
        with timer.phase("selection"):
            pass
        assert timer.total("selection") == 0.0


class TestSegmentStatistics:
    def test_statistics_of_adapted_column(self, values):
        column = SegmentedColumn(
            values, model=AdaptivePageModel(3 * KB, 12 * KB), domain=TEST_DOMAIN
        )
        for low in range(0, 90_000, 10_000):
            column.select(float(low), float(low + 12_000))
        stats = segment_statistics(column)
        assert stats.segment_count == column.segment_count
        assert stats.materialized_count == column.segment_count
        assert stats.total_bytes == pytest.approx(column.storage_bytes)
        assert stats.average_bytes > 0
        row = stats.as_row()
        assert row["segments"] == stats.segment_count

    def test_statistics_of_baseline(self, values):
        column = UnsegmentedColumn(values, domain=TEST_DOMAIN)
        stats = segment_statistics(column)
        assert stats.segment_count == 1
        assert stats.deviation_bytes == 0.0
