"""Unit tests for adaptive segmentation (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.models import AdaptivePageModel, GaussianDice
from repro.core.segmentation import SegmentedColumn
from repro.util.units import KB
from tests.conftest import TEST_DOMAIN, brute_force_count


@pytest.fixture
def column(values, apm_model) -> SegmentedColumn:
    return SegmentedColumn(values, model=apm_model, domain=TEST_DOMAIN)


class TestConstruction:
    def test_starts_as_single_segment(self, column):
        assert column.segment_count == 1
        assert column.segments[0].vrange.low == TEST_DOMAIN[0]
        assert column.segments[0].vrange.high == TEST_DOMAIN[1]

    def test_rejects_empty_and_multidimensional_input(self, apm_model):
        with pytest.raises(ValueError):
            SegmentedColumn(np.array([]), model=apm_model)
        with pytest.raises(ValueError):
            SegmentedColumn(np.zeros((2, 2)), model=apm_model)

    def test_value_width_follows_dtype(self, values, apm_model):
        column = SegmentedColumn(values.astype(np.int64), model=apm_model)
        assert column.value_width == 8


class TestSelectionCorrectness:
    def test_single_query_matches_brute_force(self, column, values):
        result = column.select(10_000, 20_000)
        assert result.count == brute_force_count(values, 10_000, 20_000)

    def test_many_queries_remain_correct_while_reorganizing(self, column, values):
        rng = np.random.default_rng(7)
        for _ in range(150):
            low = float(rng.uniform(0, 90_000))
            high = low + float(rng.uniform(100, 15_000))
            result = column.select(low, high)
            assert result.count == brute_force_count(values, low, high)
        column.check_invariants()
        assert column.segment_count > 1

    def test_oids_point_back_to_original_positions(self, column, values):
        result = column.select(30_000, 40_000)
        assert np.array_equal(np.sort(values[result.oids]), np.sort(result.values))

    def test_empty_range_query(self, column):
        result = column.select(50_000, 50_000)
        assert result.count == 0

    def test_query_outside_domain(self, column):
        result = column.select(200_000, 300_000)
        assert result.count == 0


class TestReorganization:
    def test_splits_occur_and_are_recorded(self, column):
        column.select(25_000, 75_000)
        assert column.segment_count >= 2
        stats = column.history[-1]
        assert stats.splits_performed >= 1
        assert stats.writes_bytes > 0

    def test_storage_is_constant(self, column):
        before = column.storage_bytes
        for low in range(0, 90_000, 9_000):
            column.select(float(low), float(low + 10_000))
        assert column.storage_bytes == before

    def test_segments_partition_domain_after_many_splits(self, column):
        rng = np.random.default_rng(3)
        for _ in range(100):
            low = float(rng.uniform(0, 95_000))
            column.select(low, low + 4_000)
        column.check_invariants()

    def test_untouched_segments_are_not_read(self, column):
        column.select(0, 50_000)  # splits roughly in half
        reads_before = column.accountant.total_reads_bytes
        column.select(1_000, 2_000)
        reads_delta = column.accountant.total_reads_bytes - reads_before
        assert reads_delta < column.total_bytes  # no full scan anymore

    def test_history_tracks_per_query_measurements(self, column):
        column.select(0, 10_000)
        column.select(40_000, 60_000)
        assert len(column.history) == 2
        assert column.history[0].index == 0
        assert column.history[1].index == 1
        assert column.history[1].segment_count == column.segment_count


class TestGaussianDiceIntegration:
    def test_gd_column_reorganizes_and_stays_correct(self, values):
        column = SegmentedColumn(values, model=GaussianDice(seed=5), domain=TEST_DOMAIN)
        rng = np.random.default_rng(11)
        for _ in range(100):
            low = float(rng.uniform(0, 50_000))
            high = low + 30_000
            assert column.select(low, high).count == brute_force_count(values, low, high)
        column.check_invariants()
        assert column.segment_count > 1


class TestMergeSmallSegments:
    def test_merge_reduces_fragmentation(self, values):
        column = SegmentedColumn(
            values, model=AdaptivePageModel(m_min=256, m_max=1 * KB), domain=TEST_DOMAIN
        )
        rng = np.random.default_rng(13)
        for _ in range(200):
            low = float(rng.uniform(0, 99_000))
            column.select(low, low + 500)
        fragmented = column.segment_count
        merges = column.merge_small_segments(min_bytes=2 * KB)
        assert merges > 0
        assert column.segment_count < fragmented
        column.check_invariants()

    def test_merge_keeps_results_correct(self, values, apm_model):
        column = SegmentedColumn(values, model=apm_model, domain=TEST_DOMAIN)
        for low in range(0, 90_000, 5_000):
            column.select(float(low), float(low + 6_000))
        column.merge_small_segments(min_bytes=8 * KB)
        assert column.select(12_345, 67_890).count == brute_force_count(values, 12_345, 67_890)
