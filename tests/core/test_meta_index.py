"""Unit tests for the sparse segment meta-index."""

import numpy as np
import pytest

from repro.core.meta_index import SegmentMetaIndex
from repro.core.ranges import ValueRange
from repro.core.segment import Segment


def make_segment(low: float, high: float, count: int = 10) -> Segment:
    rng = np.random.default_rng(int(low) + 1)
    values = rng.uniform(low, high, size=count).astype(np.float64)
    return Segment(ValueRange(low, high), values)


@pytest.fixture
def index() -> SegmentMetaIndex:
    return SegmentMetaIndex([make_segment(0, 25), make_segment(25, 60), make_segment(60, 100)])


class TestMaintenance:
    def test_segments_kept_in_value_order(self, index):
        lows = [segment.vrange.low for segment in index]
        assert lows == sorted(lows)

    def test_add_rejects_overlap(self, index):
        with pytest.raises(ValueError):
            index.add(make_segment(20, 30))

    def test_replace_with_subsegments(self, index):
        target = index.segments[1]
        pieces = target.partition([40])
        index.replace(target, pieces)
        assert len(index) == 4
        index.check_invariants()

    def test_replace_unknown_segment_fails(self, index):
        foreign = make_segment(200, 300)
        with pytest.raises(KeyError):
            index.replace(foreign, [foreign])

    def test_replace_rejects_foreign_segment_with_matching_low(self, index):
        # The bisect lookup must verify identity, not just the low bound.
        foreign = make_segment(0, 25)
        with pytest.raises(KeyError):
            index.replace(foreign, [foreign])

    def test_replace_with_empty_list_removes(self, index):
        target = index.segments[0]
        index.replace(target, [])
        assert len(index) == 2


class TestOverlappingClassified:
    def test_contained_vs_partial_classification(self, index):
        classified = index.overlapping_classified(ValueRange(10, 80))
        assert [(s.vrange, contained) for s, contained in classified] == [
            (ValueRange(0, 25), False),
            (ValueRange(25, 60), True),
            (ValueRange(60, 100), False),
        ]

    def test_whole_domain_query_contains_everything(self, index):
        classified = index.overlapping_classified(ValueRange(0, 100))
        assert len(classified) == 3
        assert all(contained for _, contained in classified)

    def test_empty_query_touches_nothing(self, index):
        assert index.overlapping_classified(ValueRange(50, 50)) == []

    def test_classification_preserves_overlap_order(self, index):
        classified = index.overlapping_classified(ValueRange(10, 80))
        assert [s for s, _ in classified] == index.overlapping(ValueRange(10, 80))


class TestLookups:
    def test_overlapping_middle_query(self, index):
        hits = index.overlapping(ValueRange(30, 70))
        assert [s.vrange for s in hits] == [ValueRange(25, 60), ValueRange(60, 100)]

    def test_overlapping_respects_half_open_bounds(self, index):
        hits = index.overlapping(ValueRange(25, 26))
        assert [s.vrange for s in hits] == [ValueRange(25, 60)]

    def test_overlapping_empty_query(self, index):
        assert index.overlapping(ValueRange(50, 50)) == []

    def test_overlapping_outside_domain(self, index):
        assert index.overlapping(ValueRange(500, 600)) == []

    def test_covering_value(self, index):
        segment = index.covering(61.0)
        assert segment is not None and segment.vrange == ValueRange(60, 100)
        assert index.covering(-5.0) is None
        assert index.covering(100.0) is None

    def test_footprint_estimation(self, index):
        footprint = index.estimated_footprint_bytes(ValueRange(30, 70))
        expected = sum(s.size_bytes for s in index.overlapping(ValueRange(30, 70)))
        assert footprint == expected


class TestInvariants:
    def test_check_invariants_passes_for_valid_index(self, index):
        index.check_invariants()

    def test_check_invariants_detects_stale_cache(self, index):
        index._lows[0] = 42.0  # simulate corruption
        with pytest.raises(AssertionError):
            index.check_invariants()
