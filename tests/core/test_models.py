"""Unit tests for the segmentation models (Gaussian Dice and APM)."""

import numpy as np
import pytest

from repro.core.models import (
    AdaptivePageModel,
    AutoTunedAPM,
    GaussianDice,
    SplitAction,
    model_from_name,
)
from repro.core.ranges import ValueRange
from repro.core.segment import Segment
from repro.util.units import KB


def uniform_segment(low: float, high: float, count: int) -> Segment:
    """A segment whose values are evenly spread (estimates are then exact)."""
    values = np.linspace(low, high, count, endpoint=False).astype(np.float64)
    return Segment(ValueRange(low, high), values)


class TestGaussianDiceProbability:
    def test_balanced_split_has_probability_one(self):
        assert GaussianDice.decision_probability(0.5, 0.3) == pytest.approx(1.0)

    def test_extreme_ratios_have_low_probability(self):
        assert GaussianDice.decision_probability(0.01, 0.1) < 1e-5
        assert GaussianDice.decision_probability(0.99, 0.1) < 1e-5

    def test_larger_sigma_is_more_permissive(self):
        narrow = GaussianDice.decision_probability(0.2, 0.1)
        wide = GaussianDice.decision_probability(0.2, 1.0)
        assert wide > narrow

    def test_symmetry_around_half(self):
        assert GaussianDice.decision_probability(0.3, 0.2) == pytest.approx(
            GaussianDice.decision_probability(0.7, 0.2)
        )

    def test_zero_sigma_degenerates_to_exact_half(self):
        assert GaussianDice.decision_probability(0.5, 0.0) == 1.0
        assert GaussianDice.decision_probability(0.4999, 0.0) == 0.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            GaussianDice.decision_probability(1.5, 0.1)
        with pytest.raises(ValueError):
            GaussianDice.decision_probability(0.5, -0.1)


class TestGaussianDiceDecisions:
    def test_whole_column_balanced_split_is_taken(self):
        segment = uniform_segment(0, 1000, 1000)
        model = GaussianDice(seed=1)
        decision = model.decide(ValueRange(0, 500), segment, total_bytes=segment.size_bytes)
        assert decision.should_split
        assert decision.action is SplitAction.SPLIT_AT_BOUNDS

    def test_point_query_on_small_segment_is_rejected(self):
        segment = uniform_segment(0, 100, 100)
        model = GaussianDice(seed=1)
        # The segment is 1% of the column, so sigma is tiny and a 1%-wide
        # selection has essentially zero acceptance probability.
        decisions = [
            model.decide(ValueRange(10, 11), segment, total_bytes=100 * segment.size_bytes)
            for _ in range(50)
        ]
        assert not any(decision.should_split for decision in decisions)

    def test_query_covering_whole_segment_is_never_a_split(self):
        segment = uniform_segment(0, 100, 100)
        model = GaussianDice(seed=1)
        decision = model.decide(ValueRange(0, 100), segment, total_bytes=segment.size_bytes)
        assert not decision.should_split

    def test_split_points_are_the_clipped_query_bounds(self):
        segment = uniform_segment(0, 1000, 1000)
        model = GaussianDice(seed=3)
        decision = model.decide(ValueRange(400, 2000), segment, total_bytes=segment.size_bytes)
        if decision.should_split:
            assert decision.points == (400.0,)

    def test_seeded_models_are_reproducible(self):
        segment = uniform_segment(0, 1000, 1000)
        query = ValueRange(100, 600)
        first = [
            GaussianDice(seed=7).decide(query, segment, total_bytes=segment.size_bytes).should_split
            for _ in range(1)
        ]
        second = [
            GaussianDice(seed=7).decide(query, segment, total_bytes=segment.size_bytes).should_split
            for _ in range(1)
        ]
        assert first == second


class TestAdaptivePageModel:
    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            AdaptivePageModel(m_min=12 * KB, m_max=3 * KB)
        with pytest.raises(ValueError):
            AdaptivePageModel(m_min=0, m_max=10)

    def test_rule1_small_segments_left_intact(self):
        segment = uniform_segment(0, 100, 100)  # 800 bytes
        model = AdaptivePageModel(m_min=1 * KB, m_max=4 * KB)
        decision = model.decide(ValueRange(20, 60), segment, total_bytes=10 * KB)
        assert not decision.should_split

    def test_rule2_split_at_bounds_when_pieces_large_enough(self):
        segment = uniform_segment(0, 1000, 4096)  # 32 KB
        model = AdaptivePageModel(m_min=3 * KB, m_max=12 * KB)
        decision = model.decide(ValueRange(400, 600), segment, total_bytes=segment.size_bytes)
        assert decision.action is SplitAction.SPLIT_AT_BOUNDS
        assert decision.points == (400.0, 600.0)

    def test_rule3_small_selection_on_large_segment_splits_at_one_point(self):
        segment = uniform_segment(0, 1000, 4096)  # 32 KB > Mmax
        model = AdaptivePageModel(m_min=3 * KB, m_max=12 * KB)
        decision = model.decide(ValueRange(500, 505), segment, total_bytes=segment.size_bytes)
        assert decision.action is SplitAction.SPLIT_AT_POINT
        assert len(decision.points) == 1
        point = decision.points[0]
        assert 0 < point < 1000

    def test_rule3_not_applied_to_mid_sized_segments(self):
        segment = uniform_segment(0, 1000, 1024)  # 8 KB: between Mmin and Mmax
        model = AdaptivePageModel(m_min=3 * KB, m_max=12 * KB)
        decision = model.decide(ValueRange(500, 505), segment, total_bytes=segment.size_bytes)
        assert not decision.should_split

    def test_rule3_prefers_query_border_with_smaller_query_side(self):
        segment = uniform_segment(0, 1000, 8192)  # 64 KB
        model = AdaptivePageModel(m_min=3 * KB, m_max=12 * KB)
        # Query near the low end: splitting at the high bound keeps the
        # query-side piece smaller.
        decision = model.decide(ValueRange(100, 110), segment, total_bytes=segment.size_bytes)
        assert decision.action is SplitAction.SPLIT_AT_POINT
        assert decision.points[0] == pytest.approx(110.0)

    def test_query_covering_whole_segment_is_no_split(self):
        segment = uniform_segment(0, 1000, 4096)
        model = AdaptivePageModel(m_min=3 * KB, m_max=12 * KB)
        decision = model.decide(ValueRange(0, 1000), segment, total_bytes=segment.size_bytes)
        assert not decision.should_split


class TestAutoTunedAPM:
    def test_bounds_follow_observations(self):
        model = AutoTunedAPM(initial_m_min=3 * KB, initial_m_max=12 * KB, retune_every=8)
        for _ in range(16):
            model.observe(64 * KB)
        assert model.m_min == pytest.approx(0.75 * 64 * KB)
        assert model.m_max == pytest.approx(3 * 64 * KB)

    def test_zero_observations_keep_bounds(self):
        model = AutoTunedAPM()
        model.observe(0)
        assert model.m_min == 3 * KB

    def test_history_is_bounded(self):
        model = AutoTunedAPM(history_size=4, retune_every=100)
        for i in range(20):
            model.observe(float(i + 1))
        assert len(model._history) == 4


class TestModelFactory:
    def test_known_names(self):
        assert isinstance(model_from_name("gd"), GaussianDice)
        assert isinstance(model_from_name("APM"), AdaptivePageModel)
        assert isinstance(model_from_name("apm-auto"), AutoTunedAPM)

    def test_apm_receives_bounds(self):
        model = model_from_name("apm", m_min=1 * KB, m_max=2 * KB)
        assert model.m_min == 1 * KB
        assert model.m_max == 2 * KB

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            model_from_name("btree")
