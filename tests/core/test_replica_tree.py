"""Unit tests for the replica tree structure."""

import numpy as np
import pytest

from repro.core.ranges import ValueRange
from repro.core.replica_tree import ReplicaNode, ReplicaTree
from repro.core.segment import Segment


def materialized(low: float, high: float, count: int = 16) -> Segment:
    values = np.linspace(low, high, count, endpoint=False)
    return Segment(ValueRange(low, high), values)


def virtual(low: float, high: float, count: float = 16) -> Segment:
    return Segment(ValueRange(low, high), value_width=8, estimated_count=count)


@pytest.fixture
def tree() -> ReplicaTree:
    return ReplicaTree(materialized(0, 100, 64))


class TestNodes:
    def test_add_child_orders_by_range(self, tree):
        root = tree.roots[0]
        upper = ReplicaNode(virtual(50, 100))
        lower = ReplicaNode(materialized(0, 50, 32))
        root.add_child(upper)
        root.add_child(lower)
        assert [child.vrange.low for child in root.children] == [0, 50]
        assert all(child.parent is root for child in root.children)

    def test_add_child_rejects_escaping_range(self, tree):
        with pytest.raises(ValueError):
            tree.roots[0].add_child(ReplicaNode(virtual(50, 150)))

    def test_depth_and_walk(self, tree):
        root = tree.roots[0]
        child = ReplicaNode(materialized(0, 50, 32))
        grandchild = ReplicaNode(virtual(0, 25))
        root.add_child(child)
        root.add_child(ReplicaNode(virtual(50, 100)))
        child.add_child(grandchild)
        child.add_child(ReplicaNode(virtual(25, 50)))
        assert root.depth() == 2
        assert len(list(root.walk())) == 5


class TestTree:
    def test_storage_counts_only_materialized(self, tree):
        root = tree.roots[0]
        root.add_child(ReplicaNode(materialized(0, 50, 32)))
        root.add_child(ReplicaNode(virtual(50, 100)))
        expected = root.size_bytes + root.children[0].size_bytes
        assert tree.storage_bytes == expected

    def test_roots_overlapping(self, tree):
        assert tree.roots_overlapping(ValueRange(10, 20)) == [tree.roots[0]]
        assert tree.roots_overlapping(ValueRange(200, 300)) == []

    def test_splice_out_internal_node(self, tree):
        root = tree.roots[0]
        child = ReplicaNode(materialized(0, 50, 32))
        root.add_child(child)
        root.add_child(ReplicaNode(materialized(50, 100, 32)))
        child.add_child(ReplicaNode(materialized(0, 25, 16)))
        child.add_child(ReplicaNode(materialized(25, 50, 16)))
        tree.splice_out(child)
        assert len(root.children) == 3
        assert all(node.parent is root for node in root.children)
        tree.check_invariants()

    def test_splice_out_root_promotes_children(self, tree):
        root = tree.roots[0]
        root.add_child(ReplicaNode(materialized(0, 40, 16)))
        root.add_child(ReplicaNode(materialized(40, 100, 16)))
        tree.splice_out(root)
        assert len(tree.roots) == 2
        assert [r.vrange.low for r in tree.roots] == [0, 40]
        tree.check_invariants()

    def test_invariants_detect_gap_in_children(self, tree):
        root = tree.roots[0]
        root.add_child(ReplicaNode(materialized(0, 40, 16)))
        root.add_child(ReplicaNode(materialized(60, 100, 16)))  # gap 40-60
        with pytest.raises(AssertionError):
            tree.check_invariants()

    def test_invariants_detect_uncovered_virtual_leaf(self, tree):
        root = tree.roots[0]
        root.add_child(ReplicaNode(materialized(0, 50, 16)))
        root.add_child(ReplicaNode(virtual(50, 100)))
        root.segment.free()  # root loses its payload: virtual leaf now uncovered
        with pytest.raises(AssertionError):
            tree.check_invariants()
