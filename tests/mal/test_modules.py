"""Unit tests for the built-in MAL module registrations (sql/calc/aggr/bat)."""

import numpy as np
import pytest

from repro.engine.execution import ExecutionContext
from repro.mal.modules import default_registry
from repro.storage.bat import BAT
from repro.storage.catalog import Catalog


@pytest.fixture
def context() -> ExecutionContext:
    catalog = Catalog()
    catalog.create_table("p", {"objid": np.int64, "ra": np.float64})
    catalog.table("p").bulk_load(
        {"objid": np.arange(5, dtype=np.int64), "ra": np.array([1.0, 2.0, 3.0, 4.0, 5.0])}
    )
    return ExecutionContext(catalog=catalog)


@pytest.fixture
def registry():
    return default_registry()


class TestSQLModule:
    def test_bind_levels(self, context, registry):
        bind = registry.resolve("sql.bind")
        persistent = bind(context, "sys", "p", "ra", 0)
        inserts = bind(context, "sys", "p", "ra", 1)
        assert persistent.count == 5
        assert inserts.count == 0

    def test_bind_dbat(self, context, registry):
        context.catalog.table("p").delete(np.array([1]))
        deletions = registry.resolve("sql.bind_dbat")(context, "sys", "p", 1)
        assert deletions.count == 1

    def test_result_set_flow(self, context, registry):
        result_set = registry.resolve("sql.resultSet")(context, 1, 1, None)
        bat = BAT(np.array([1, 2, 3]))
        registry.resolve("sql.rsColumn")(context, result_set, "sys.p", "objid", "int64", 0, 0, bat)
        registry.resolve("sql.exportResult")(context, result_set, "")
        columns = context.exported_columns()
        assert columns["objid"].tolist() == [1, 2, 3]

    def test_rs_column_on_unknown_result_set(self, context, registry):
        with pytest.raises(KeyError):
            registry.resolve("sql.rsColumn")(context, 42, "t", "c", "int64", 0, 0, BAT(np.array([1])))
        with pytest.raises(KeyError):
            registry.resolve("sql.exportResult")(context, 42, "")

    def test_export_value(self, context, registry):
        registry.resolve("sql.exportValue")(context, "count(*)", 7)
        assert context.scalars["count(*)"] == 7.0

    def test_no_exported_result_set_yields_empty_columns(self, context, registry):
        registry.resolve("sql.resultSet")(context, 1, 1, None)
        assert context.exported_columns() == {}


class TestOtherModules:
    def test_calc(self, context, registry):
        assert registry.resolve("calc.oid")(context, 3.0) == 3
        assert registry.resolve("calc.dbl")(context, "2.5") == 2.5

    def test_bat_mirror(self, context, registry):
        bat = BAT(np.array([5.0, 6.0]), hseqbase=10)
        mirrored = registry.resolve("bat.mirror")(context, bat)
        assert mirrored.head.tolist() == mirrored.tail.tolist() == [10, 11]

    def test_aggr_registrations(self, context, registry):
        bat = BAT(np.array([1.0, 3.0]))
        assert registry.resolve("aggr.sum")(context, bat) == 4.0
        assert registry.resolve("aggr.count")(context, bat) == 2
        assert registry.resolve("aggr.avg")(context, bat) == 2.0
        assert registry.resolve("aggr.min")(context, bat) == 1.0
        assert registry.resolve("aggr.max")(context, bat) == 3.0

    def test_algebra_select_flags(self, context, registry):
        bat = BAT(np.array([1.0, 2.0, 3.0]))
        select = registry.resolve("algebra.select")
        assert select(context, bat, 1.0, 2.0).count == 1  # default half-open
        assert select(context, bat, 1.0, 2.0, True, True).count == 2
        assert select(context, bat, 1.0, 3.0, False, False).count == 1

    def test_every_figure1_operator_is_registered(self, registry):
        for callee in (
            "algebra.select",
            "algebra.uselect",
            "algebra.kunion",
            "algebra.kdifference",
            "algebra.markT",
            "algebra.join",
            "bat.reverse",
            "calc.oid",
            "sql.bind",
            "sql.bind_dbat",
            "sql.resultSet",
            "sql.rsColumn",
            "sql.exportResult",
        ):
            assert registry.knows(callee), callee
