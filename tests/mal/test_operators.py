"""Unit tests for the relational operators over BATs."""

import numpy as np
import pytest

from repro.mal import operators
from repro.storage.bat import BAT


@pytest.fixture
def ra_bat() -> BAT:
    return BAT(np.array([10.0, 25.0, 5.0, 40.0, 25.0]), name="ra")


class TestSelections:
    def test_select_half_open_default(self, ra_bat):
        result = operators.select(ra_bat, 10, 25)
        assert result.head.tolist() == [0]
        assert result.tail.tolist() == [10.0]

    def test_select_inclusive_bounds(self, ra_bat):
        result = operators.select(ra_bat, 10, 25, include_high=True)
        assert result.head.tolist() == [0, 1, 4]

    def test_select_exclusive_low(self, ra_bat):
        result = operators.select(ra_bat, 10, 40, include_low=False)
        assert result.head.tolist() == [1, 4]

    def test_select_respects_hseqbase(self):
        bat = BAT(np.array([1.0, 2.0, 3.0]), hseqbase=100)
        result = operators.select(bat, 2, 4, include_high=True)
        assert result.head.tolist() == [101, 102]

    def test_uselect_candidate_list(self, ra_bat):
        result = operators.uselect(ra_bat, 20, 30)
        assert result.head.tolist() == result.tail.tolist() == [1, 4]

    def test_thetaselect(self, ra_bat):
        assert operators.thetaselect(ra_bat, 25.0, ">").head.tolist() == [3]
        assert operators.thetaselect(ra_bat, 25.0, "==").head.tolist() == [1, 4]
        with pytest.raises(ValueError):
            operators.thetaselect(ra_bat, 25.0, "~")


class TestSetOperations:
    def test_kunion_prefers_left_pairs(self):
        left = BAT.from_pairs(np.array([0, 1]), np.array([10, 11]))
        right = BAT.from_pairs(np.array([1, 2]), np.array([99, 12]))
        merged = operators.kunion(left, right)
        assert dict(zip(merged.head.tolist(), merged.tail.tolist())) == {0: 10, 1: 11, 2: 12}

    def test_kunion_with_empty_passes_through(self):
        left = BAT.from_pairs(np.array([0]), np.array([1]))
        empty = BAT.empty(np.int64)
        assert operators.kunion(left, empty) is left
        assert operators.kunion(empty, left) is left

    def test_kdifference(self):
        left = BAT.from_pairs(np.array([0, 1, 2]), np.array([10, 11, 12]))
        right = BAT.from_pairs(np.array([1]), np.array([0]))
        result = operators.kdifference(left, right)
        assert result.head.tolist() == [0, 2]

    def test_kdifference_with_empty_right_is_identity(self):
        left = BAT.from_pairs(np.array([0, 1]), np.array([10, 11]))
        assert operators.kdifference(left, BAT.empty(np.int64)) is left

    def test_kintersect(self):
        left = BAT.from_pairs(np.array([0, 1, 2]), np.array([10, 11, 12]))
        right = BAT.from_pairs(np.array([2, 0]), np.array([0, 0]))
        result = operators.kintersect(left, right)
        assert result.head.tolist() == [0, 2]

    def test_kintersect_with_empty_is_empty(self):
        left = BAT.from_pairs(np.array([0, 1]), np.array([10, 11]))
        assert operators.kintersect(left, BAT.empty(np.int64)).count == 0


class TestTupleReconstruction:
    def test_mark_tail_assigns_dense_numbers(self):
        candidates = BAT.from_pairs(np.array([7, 3, 9]), np.array([7, 3, 9]))
        marked = operators.mark_tail(candidates, 0)
        assert marked.head.tolist() == [7, 3, 9]
        assert marked.tail.tolist() == [0, 1, 2]

    def test_join_against_void_head(self):
        positions = BAT.from_pairs(np.array([0, 1]), np.array([3, 1]))  # tail = oids to fetch
        column = BAT(np.array([100, 101, 102, 103]), hseqbase=0)
        joined = operators.join(positions, column)
        assert joined.head.tolist() == [0, 1]
        assert joined.tail.tolist() == [103, 101]

    def test_join_against_explicit_head(self):
        positions = BAT.from_pairs(np.array([0, 1]), np.array([9, 5]))
        column = BAT.from_pairs(np.array([5, 9]), np.array([50.0, 90.0]))
        joined = operators.join(positions, column)
        assert joined.tail.tolist() == [90.0, 50.0]

    def test_join_drops_unmatched_keys(self):
        positions = BAT.from_pairs(np.array([0, 1]), np.array([2, 42]))
        column = BAT(np.array([10, 11, 12]))
        joined = operators.join(positions, column)
        assert joined.head.tolist() == [0]
        assert joined.tail.tolist() == [12]

    def test_full_reconstruction_pipeline(self):
        """markT + reverse + join reproduces the Figure-1 tuple reconstruction."""
        ra = BAT(np.array([205.11, 100.0, 205.115, 300.0]), name="ra")
        objid = BAT(np.array([1000, 1001, 1002, 1003]), name="objid")
        candidates = operators.uselect(ra, 205.1, 205.12)
        marked = operators.mark_tail(candidates, 0)
        positions = marked.reverse()
        result = operators.join(positions, objid)
        assert result.tail.tolist() == [1000, 1002]


class TestAggregates:
    def test_aggregates(self):
        bat = BAT(np.array([1.0, 2.0, 3.0]))
        assert operators.aggr_sum(bat) == 6.0
        assert operators.aggr_count(bat) == 3
        assert operators.aggr_avg(bat) == pytest.approx(2.0)
        assert operators.aggr_min(bat) == 1.0
        assert operators.aggr_max(bat) == 3.0

    def test_aggregates_on_empty_bat(self):
        empty = BAT.empty(np.float64)
        assert operators.aggr_sum(empty) == 0.0
        assert operators.aggr_count(empty) == 0
        assert operators.aggr_avg(empty) == 0.0
        with pytest.raises(ValueError):
            operators.aggr_min(empty)
        with pytest.raises(ValueError):
            operators.aggr_max(empty)
