"""Unit tests for the MAL program representation and the builder."""

import pytest

from repro.mal.builder import ProgramBuilder
from repro.mal.program import Const, Instruction, MALProgram, Var


class TestInstruction:
    def test_render_assignment(self):
        instruction = Instruction(
            opcode="assign",
            targets=("X1",),
            module="algebra",
            function="select",
            args=(Var("X0"), Const(10), Const(20)),
        )
        assert instruction.render() == "X1 := algebra.select(X0, 10, 20);"

    def test_render_barrier_and_exit(self):
        barrier = Instruction(
            opcode="barrier", targets=("rseg",), module="bpm", function="newIterator", args=(Var("Y"),)
        )
        assert barrier.render().startswith("barrier rseg := bpm.newIterator")
        assert Instruction(opcode="exit", targets=("rseg",)).render() == "exit rseg;"

    def test_render_string_constants_quoted(self):
        instruction = Instruction(
            opcode="assign", targets=("X",), module="sql", function="bind", args=(Const("sys"),)
        )
        assert '"sys"' in instruction.render()

    def test_invalid_opcode_rejected(self):
        with pytest.raises(ValueError):
            Instruction(opcode="jump", targets=("X",), module="m", function="f")

    def test_assign_requires_function(self):
        with pytest.raises(ValueError):
            Instruction(opcode="assign", targets=("X",))

    def test_argument_names(self):
        instruction = Instruction(
            opcode="assign",
            targets=("X2",),
            module="algebra",
            function="join",
            args=(Var("A"), Const(1), Var("B")),
        )
        assert instruction.argument_names() == ["A", "B"]


class TestMALProgram:
    def _program(self) -> MALProgram:
        builder = ProgramBuilder("demo")
        bound = builder.call("sql", "bind", Const("sys"), Const("p"), Const("ra"), Const(0))
        builder.call("algebra", "select", builder.var(bound), Const(1), Const(2))
        return builder.build()

    def test_defined_and_used_variables(self):
        program = self._program()
        assert program.defined_variables() >= {"X_1", "X_2"}
        assert "X_1" in program.used_variables()

    def test_find_calls(self):
        program = self._program()
        assert program.find_calls("sql", "bind") == [0]
        assert program.find_calls("algebra") == [1]
        assert program.find_calls("aggr") == []

    def test_render_has_function_wrapper(self):
        text = self._program().render()
        assert text.startswith("function user.demo(")
        assert text.endswith("end demo;")
        assert "sql.bind" in text

    def test_copy_is_independent(self):
        program = self._program()
        clone = program.copy()
        clone.instructions.pop()
        assert len(program) == 2
        assert len(clone) == 1


class TestProgramBuilder:
    def test_fresh_names_are_unique(self):
        builder = ProgramBuilder("p")
        names = {builder.fresh() for _ in range(10)}
        assert len(names) == 10

    def test_effect_calls_have_no_target(self):
        builder = ProgramBuilder("p")
        builder.effect("sql", "exportResult", Const(1))
        assert builder.build().instructions[0].targets == ()

    def test_barrier_block_construction(self):
        builder = ProgramBuilder("p")
        handle = builder.call("bpm", "take", Const("sys"), Const("p"), Const("ra"))
        barrier = builder.barrier("bpm", "newIterator", builder.var(handle), Const(0), Const(1))
        builder.redo(barrier, "bpm", "hasMoreElements", builder.var(handle), Const(0), Const(1))
        builder.exit(barrier)
        opcodes = [instruction.opcode for instruction in builder.build()]
        assert opcodes == ["assign", "barrier", "redo", "exit"]

    def test_plain_python_values_wrap_as_constants(self):
        builder = ProgramBuilder("p")
        builder.call("calc", "oid", 7)
        assert builder.build().instructions[0].args == (Const(7),)
