"""Tests for the cached barrier/redo/exit block structure on MALProgram."""

import pytest

from repro.mal.builder import ProgramBuilder
from repro.mal.program import (
    Const,
    Instruction,
    MALProgram,
    MALRuntimeError,
    match_blocks,
)


def loop_program() -> MALProgram:
    builder = ProgramBuilder("loop")
    barrier = builder.barrier("iter", "new", target="item")
    builder.effect("iter", "collect", builder.var("item"))
    builder.redo(barrier, "iter", "next")
    builder.exit(barrier)
    return builder.build()


class TestMatchBlocks:
    def test_blocks_map_barrier_and_redo_to_bounds(self):
        program = loop_program()
        blocks = program.matched_blocks()
        assert blocks == {0: (0, 3), 2: (0, 3)}

    def test_result_is_cached_between_calls(self):
        program = loop_program()
        assert program.matched_blocks() is program.matched_blocks()

    def test_append_invalidates_the_cache(self):
        program = loop_program()
        first = program.matched_blocks()
        program.append(
            Instruction(opcode="assign", targets=("y",), module="calc",
                        function="const", args=(Const(1),))
        )
        second = program.matched_blocks()
        assert second is not first
        assert second == first  # appending a plain assignment adds no block

    def test_extend_invalidates_the_cache(self):
        program = loop_program()
        first = program.matched_blocks()
        barrier = Instruction(opcode="barrier", targets=("b",), module="iter",
                              function="new", args=())
        exit_instruction = Instruction(opcode="exit", targets=("b",))
        program.extend([barrier, exit_instruction])
        second = program.matched_blocks()
        assert second is not first
        assert second[4] == (4, 5)

    def test_direct_list_mutation_is_caught_by_length_check(self):
        program = loop_program()
        program.matched_blocks()
        program.instructions.append(Instruction(opcode="exit", targets=("other",)))
        with pytest.raises(MALRuntimeError, match="without a matching barrier"):
            program.matched_blocks()

    def test_invalidate_blocks_forces_recomputation(self):
        program = loop_program()
        first = program.matched_blocks()
        program.invalidate_blocks()
        second = program.matched_blocks()
        assert second is not first and second == first

    def test_copy_does_not_share_the_cache(self):
        program = loop_program()
        original = program.matched_blocks()
        clone = program.copy()
        assert clone.matched_blocks() == original
        clone.append(Instruction(opcode="barrier", targets=("z",), module="iter",
                                 function="new", args=()))
        with pytest.raises(MALRuntimeError, match="without exit"):
            clone.matched_blocks()
        assert program.matched_blocks() == original  # the original is untouched


class TestMatchBlocksValidation:
    def test_unmatched_barrier_rejected(self):
        program = MALProgram("bad")
        program.append(
            Instruction(opcode="barrier", targets=("x",), module="calc",
                        function="const", args=(Const(1),))
        )
        with pytest.raises(MALRuntimeError, match="without exit"):
            program.matched_blocks()

    def test_redo_outside_block_rejected(self):
        with pytest.raises(MALRuntimeError, match="outside"):
            match_blocks([
                Instruction(opcode="redo", targets=("x",), module="calc",
                            function="const", args=(Const(1),))
            ])

    def test_nested_barrier_on_same_variable_rejected(self):
        barrier = Instruction(opcode="barrier", targets=("x",), module="calc",
                              function="const", args=(Const(1),))
        with pytest.raises(MALRuntimeError, match="nested"):
            match_blocks([barrier, barrier])
