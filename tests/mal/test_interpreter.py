"""Unit tests for the MAL interpreter, including barrier blocks."""

import pytest

from repro.mal.builder import ProgramBuilder
from repro.mal.interpreter import Interpreter, MALRuntimeError
from repro.mal.modules import ModuleRegistry
from repro.mal.program import Const, Instruction, MALProgram, Var


class _Context:
    """A minimal execution context for interpreter tests."""

    variables: dict = {}


def make_registry() -> ModuleRegistry:
    registry = ModuleRegistry()
    registry.register("calc", "add", lambda ctx, a, b: a + b)
    registry.register("calc", "const", lambda ctx, a: a)
    return registry


class TestBasicExecution:
    def test_assignment_chain(self):
        builder = ProgramBuilder("demo")
        first = builder.call("calc", "const", Const(5))
        builder.call("calc", "add", builder.var(first), Const(3), target="result")
        env = Interpreter(make_registry()).run(builder.build(), _Context())
        assert env["result"] == 8

    def test_arguments_passed_at_run_time(self):
        builder = ProgramBuilder("demo")
        builder.call("calc", "add", Var("A0"), Var("A1"), target="out")
        env = Interpreter(make_registry()).run(builder.build(), _Context(), {"A0": 2, "A1": 40})
        assert env["out"] == 42

    def test_undefined_variable_raises(self):
        builder = ProgramBuilder("demo")
        builder.call("calc", "const", Var("missing"))
        with pytest.raises(MALRuntimeError, match="undefined"):
            Interpreter(make_registry()).run(builder.build(), _Context())

    def test_unknown_function_raises(self):
        builder = ProgramBuilder("demo")
        builder.call("calc", "nonexistent", Const(1))
        with pytest.raises(MALRuntimeError, match="no MAL implementation"):
            Interpreter(make_registry()).run(builder.build(), _Context())


class TestBarrierBlocks:
    def _looping_registry(self, items: list) -> ModuleRegistry:
        registry = make_registry()
        state = {"position": 0}

        def new_iterator(ctx, *args):
            state["position"] = 0
            return self_next(ctx)

        def self_next(ctx, *args):
            if state["position"] >= len(items):
                return None
            item = items[state["position"]]
            state["position"] += 1
            return item

        sink: list = []
        registry.register("iter", "new", new_iterator)
        registry.register("iter", "next", self_next)
        registry.register("iter", "collect", lambda ctx, value: sink.append(value))
        registry.register("iter", "sink", lambda ctx: sink)
        return registry

    def _loop_program(self) -> MALProgram:
        builder = ProgramBuilder("loop")
        barrier = builder.barrier("iter", "new", target="item")
        builder.effect("iter", "collect", Var("item"))
        builder.redo(barrier, "iter", "next")
        builder.exit(barrier)
        builder.call("iter", "sink", target="all")
        return builder.build()

    def test_loop_visits_every_item(self):
        registry = self._looping_registry([10, 20, 30])
        env = Interpreter(registry).run(self._loop_program(), _Context())
        assert env["all"] == [10, 20, 30]

    def test_empty_iterator_skips_block(self):
        registry = self._looping_registry([])
        env = Interpreter(registry).run(self._loop_program(), _Context())
        assert env["all"] == []

    def test_runaway_loop_is_stopped(self):
        registry = make_registry()
        registry.register("iter", "new", lambda ctx: 1)
        registry.register("iter", "next", lambda ctx: 1)  # never returns None
        builder = ProgramBuilder("forever")
        barrier = builder.barrier("iter", "new", target="item")
        builder.redo(barrier, "iter", "next")
        builder.exit(barrier)
        interpreter = Interpreter(registry, max_steps=1000)
        with pytest.raises(MALRuntimeError, match="exceeded"):
            interpreter.run(builder.build(), _Context())

    def test_unmatched_barrier_rejected(self):
        program = MALProgram("bad")
        program.append(
            Instruction(opcode="barrier", targets=("x",), module="calc", function="const", args=(Const(1),))
        )
        with pytest.raises(MALRuntimeError, match="without exit"):
            Interpreter(make_registry()).run(program, _Context())

    def test_redo_outside_block_rejected(self):
        program = MALProgram("bad")
        program.append(
            Instruction(opcode="redo", targets=("x",), module="calc", function="const", args=(Const(1),))
        )
        with pytest.raises(MALRuntimeError, match="outside"):
            Interpreter(make_registry()).run(program, _Context())


class TestModuleRegistry:
    def test_register_and_resolve(self):
        registry = make_registry()
        assert registry.knows("calc.add")
        assert not registry.knows("calc.mul")
        with pytest.raises(KeyError):
            registry.resolve("calc.mul")

    def test_copy_is_independent(self):
        registry = make_registry()
        clone = registry.copy()
        clone.register("calc", "mul", lambda ctx, a, b: a * b)
        assert clone.knows("calc.mul")
        assert not registry.knows("calc.mul")
