"""Unit tests for slot-based compiled MAL plans."""

import pytest

from repro.mal.builder import ProgramBuilder
from repro.mal.compiled import CompiledPlan, compile_program
from repro.mal.interpreter import Interpreter, MALRuntimeError
from repro.mal.modules import ModuleRegistry
from repro.mal.program import Const, Instruction, MALProgram, Var


class _Context:
    variables: dict = {}


def make_registry() -> ModuleRegistry:
    registry = ModuleRegistry()
    registry.register("calc", "add", lambda ctx, a, b: a + b)
    registry.register("calc", "const", lambda ctx, a: a)
    registry.register("calc", "pair", lambda ctx, a, b: (b, a))
    return registry


def make_loop_registry(items: list) -> tuple[ModuleRegistry, list]:
    registry = make_registry()
    state = {"position": 0}
    sink: list = []

    def new_iterator(ctx, *args):
        state["position"] = 0
        return next_item(ctx)

    def next_item(ctx, *args):
        if state["position"] >= len(items):
            return None
        item = items[state["position"]]
        state["position"] += 1
        return item

    registry.register("iter", "new", new_iterator)
    registry.register("iter", "next", next_item)
    registry.register("iter", "collect", lambda ctx, value: sink.append(value))
    registry.register("iter", "sink", lambda ctx: list(sink))
    return registry, sink


def loop_program() -> MALProgram:
    builder = ProgramBuilder("loop")
    barrier = builder.barrier("iter", "new", target="item")
    builder.effect("iter", "collect", Var("item"))
    builder.redo(barrier, "iter", "next")
    builder.exit(barrier)
    builder.call("iter", "sink", target="all")
    return builder.build()


class TestStraightLine:
    def test_assignment_chain(self):
        builder = ProgramBuilder("demo")
        first = builder.call("calc", "const", Const(5))
        builder.call("calc", "add", builder.var(first), Const(3), target="result")
        plan = compile_program(builder.build(), make_registry())
        assert isinstance(plan, CompiledPlan)
        env = plan.run(_Context())
        assert env["result"] == 8

    def test_arguments_seed_parameter_slots(self):
        builder = ProgramBuilder("demo", parameters=("A0", "A1"))
        builder.call("calc", "add", Var("A0"), Var("A1"), target="out")
        plan = compile_program(builder.build(), make_registry())
        env = plan.run(_Context(), {"A0": 2, "A1": 40})
        assert env["out"] == 42
        assert env["A0"] == 2  # arguments appear in the environment, like the interpreter

    def test_unknown_argument_names_are_ignored(self):
        builder = ProgramBuilder("demo")
        builder.call("calc", "const", Const(1), target="out")
        plan = compile_program(builder.build(), make_registry())
        env = plan.run(_Context(), {"unused": 99})
        assert env["out"] == 1
        assert env["unused"] == 99  # interpreter parity: arguments pass through

    def test_multi_target_binding(self):
        program = MALProgram("multi")
        program.append(
            Instruction(
                opcode="assign",
                targets=("a", "b"),
                module="calc",
                function="pair",
                args=(Const(1), Const(2)),
            )
        )
        plan = compile_program(program, make_registry())
        env = plan.run(_Context())
        assert (env["a"], env["b"]) == (2, 1)

    def test_undefined_variable_raises(self):
        builder = ProgramBuilder("demo")
        builder.call("calc", "const", Var("missing"))
        plan = compile_program(builder.build(), make_registry())
        with pytest.raises(MALRuntimeError, match="undefined"):
            plan.run(_Context())

    def test_unknown_function_raises_at_compile_time(self):
        builder = ProgramBuilder("demo")
        builder.call("calc", "nonexistent", Const(1))
        with pytest.raises(MALRuntimeError, match="no MAL implementation"):
            compile_program(builder.build(), make_registry())


class TestBarrierBlocks:
    def test_loop_visits_every_item(self):
        registry, _ = make_loop_registry([10, 20, 30])
        plan = compile_program(loop_program(), registry)
        env = plan.run(_Context())
        assert env["all"] == [10, 20, 30]

    def test_empty_iterator_skips_block(self):
        registry, sink = make_loop_registry([])
        plan = compile_program(loop_program(), registry)
        env = plan.run(_Context())
        assert env["all"] == []
        assert sink == []

    def test_runaway_loop_is_stopped(self):
        registry = make_registry()
        registry.register("iter", "new", lambda ctx: 1)
        registry.register("iter", "next", lambda ctx: 1)  # never returns None
        builder = ProgramBuilder("forever")
        barrier = builder.barrier("iter", "new", target="item")
        builder.redo(barrier, "iter", "next")
        builder.exit(barrier)
        plan = compile_program(builder.build(), registry, max_steps=1000)
        with pytest.raises(MALRuntimeError, match="exceeded"):
            plan.run(_Context())

    def test_matches_interpreter_environment(self):
        for items in ([], [1], [5, 6, 7]):
            registry, _ = make_loop_registry(items)
            interpreted = Interpreter(registry).run(loop_program(), _Context())
            registry, _ = make_loop_registry(items)
            compiled = compile_program(loop_program(), registry).run(_Context())
            assert interpreted == compiled


class TestOpcodeCounters:
    def test_straight_line_counts_every_instruction_once(self):
        builder = ProgramBuilder("demo")
        first = builder.call("calc", "const", Const(5))
        builder.call("calc", "add", builder.var(first), Const(3))
        plan = compile_program(builder.build(), make_registry())
        counts = plan.new_counters()
        plan.execute(_Context(), None, counts)
        assert plan.opcode_counts(counts) == {"calc.const": 1, "calc.add": 1}

    def test_loop_counts_reflect_iterations(self):
        registry, _ = make_loop_registry([10, 20, 30])
        plan = compile_program(loop_program(), registry)
        counts = plan.new_counters()
        plan.execute(_Context(), None, counts)
        aggregated = plan.opcode_counts(counts)
        assert aggregated["iter.collect"] == 3
        assert aggregated["iter.next"] == 3  # two redo loops + the final None
        assert aggregated["iter.new"] == 1
        assert aggregated["exit"] == 1

    def test_skipped_block_counts_nothing_inside(self):
        registry, _ = make_loop_registry([])
        plan = compile_program(loop_program(), registry)
        counts = plan.new_counters()
        plan.execute(_Context(), None, counts)
        aggregated = plan.opcode_counts(counts)
        assert "iter.collect" not in aggregated
        assert aggregated["iter.new"] == 1


class TestSlots:
    def test_slot_interning_covers_parameters_and_targets(self):
        builder = ProgramBuilder("demo", parameters=("p0",))
        builder.call("calc", "add", Var("p0"), Const(1), target="out")
        plan = compile_program(builder.build(), make_registry())
        assert plan.slot_count == 2
        assert plan.slot_of("p0") == 0
        assert plan.slot_of("out") == 1
        with pytest.raises(KeyError):
            plan.slot_of("nope")


class TestBoundExecution:
    def _plan(self) -> CompiledPlan:
        builder = ProgramBuilder("bound", parameters=("__p0", "__p1"))
        builder.call("calc", "add", Var("__p0"), Var("__p1"), target="out")
        return compile_program(builder.build(), make_registry())

    def test_parameter_slots_default_to_declared_parameters(self):
        plan = self._plan()
        assert plan.parameter_slots() == (plan.slot_of("__p0"), plan.slot_of("__p1"))
        assert plan.parameter_slots(("__p1",)) == (plan.slot_of("__p1"),)
        with pytest.raises(KeyError):
            plan.parameter_slots(("missing",))

    def test_execute_bound_matches_execute(self):
        plan = self._plan()
        slots = plan.parameter_slots()
        by_name = plan.execute(_Context(), {"__p0": 2.0, "__p1": 3.0})
        by_slot = plan.execute_bound(_Context(), slots, (2.0, 3.0))
        assert by_slot == by_name
        assert by_slot[plan.slot_of("out")] == 5.0

    def test_execute_bound_counts_instructions(self):
        plan = self._plan()
        counts = plan.new_counters()
        plan.execute_bound(_Context(), plan.parameter_slots(), (1.0, 1.0), counts)
        assert sum(counts) == len(plan)

    def test_missing_binding_raises_undefined_variable(self):
        plan = self._plan()
        with pytest.raises(MALRuntimeError, match="__p1"):
            plan.execute_bound(_Context(), plan.parameter_slots(("__p0",)), (1.0,))
