"""Setup shim.

The project is fully described by ``pyproject.toml``; this file only exists so
that ``pip install -e .`` also works on minimal/offline environments where the
``wheel`` package is unavailable and pip falls back to the legacy editable
install path.
"""

from setuptools import setup

setup()
